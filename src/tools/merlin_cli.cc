/**
 * @file
 * merlin_cli — command-line front end for the library.
 *
 *   merlin_cli list
 *       List the bundled workloads.
 *   merlin_cli run --workload qsort
 *       Execute a workload on the out-of-order core; print timing stats
 *       and verify the output against the reference implementation.
 *   merlin_cli campaign --workload qsort --structure rf
 *       [--regs N] [--sq N] [--l1d KB] [--faults N | --margin E --conf C]
 *       [--seed N] [--window N] [--truth] [--relyzer]
 *       [--jobs N] [--checkpoint-interval CYCLES] [--max-checkpoints N]
 *       [--early-exit=on|off] [--replay=on|off]
 *       [--mem-chunk-bytes N] [--timeout-factor N]
 *       Run a MeRLiN campaign and print the reliability report.
 *       --jobs N spreads the injections over N worker threads (0 = all
 *       hardware threads); results are bit-identical for any N.
 *       --checkpoint-interval sets the golden-run snapshot cadence the
 *       injections resume from (0 disables checkpointing);
 *       --max-checkpoints bounds how many are retained.
 *       --early-exit ends faulty runs at the first golden checkpoint
 *       they provably reconverged with (classification-preserving; on
 *       by default).  --replay consults the golden effect trace to
 *       classify dead flips Masked without simulation and to resume
 *       diverging flips at the last pre-divergence checkpoint
 *       (classification-preserving; on by default — off only for A/B
 *       validation).  --mem-chunk-bytes sets the copy-on-write chunk
 *       granularity of memory/cache state (power of two >= 64).
 *       Neither changes campaign outcomes.  --timeout-factor scales
 *       the paper's 3x-golden timeout rule — it moves the Timeout
 *       classification boundary, so keep the default when comparing
 *       against paper numbers.
 *       --inject-wall-limit SECONDS arms a real-wall-clock watchdog
 *       per faulty run (distinct from the simulated-cycle timeout);
 *       an injection that trips it — or that throws out of the
 *       simulator — is quarantined: recorded by fault key + reason,
 *       counted Crash, and the campaign keeps going.
 *       --quarantine=fail aborts on the first quarantined injection
 *       instead (default: continue).
 *   merlin_cli suite manifest.json
 *       [--jobs N] [--out results.json] [--out-dir DIR] [--resume]
 *       [--no-timing] [--sections N]
 *       [--select i/n | --select-hash i/n]
 *       [--quarantine=fail|continue] [--inject-wall-limit SECONDS]
 *       [--trace trace.json] [--metrics metrics.json]
 *       [--progress[=SECS]] [--progress-json FILE]
 *       Run a whole suite of campaigns (one JSON manifest entry each)
 *       on one shared worker pool: profiles overlap and workers steal
 *       injections across campaigns, with bit-identical results for
 *       any --jobs.  --out persists every CampaignResult keyed by a
 *       content hash of its spec; with --resume, specs already in the
 *       file are served from it (cache hits / crash recovery), and a
 *       campaign that was KILLED midway resumes from its outcome
 *       journal (an append-only fsync'd file beside the shard spill)
 *       with results byte-identical to an uninterrupted run.
 *       --out-dir additionally spills every campaign as a single-entry
 *       shard file DIR/<key>.json for `store merge`.  --no-timing
 *       zeroes wall-clock fields so the results file is byte-identical
 *       across runs.
 *       --sections N turns on incremental (partial-hit) caching: each
 *       eligible campaign's golden run is cut into N equal cycle
 *       intervals, per-section outcome slices are stored keyed at
 *       (spec minus swept knobs, currently mem_chunk_bytes) x section
 *       in the merlin-store-v2 shape, and a --resume whose spec
 *       differs only in a swept knob re-injects ONLY the sections the
 *       store is missing — with the composed result byte-identical to
 *       a cold full run.  The report tags eligible campaigns with
 *       [sections hit/N] and prints each composed AVF with its
 *       Leveugle sampling margin.
 *       Telemetry (all strictly out-of-band — results and store bytes
 *       are byte-identical with or without it): --trace records every
 *       scheduler/campaign/injection/store span as Chrome trace_event
 *       JSON (load in chrome://tracing or Perfetto); --metrics dumps
 *       the metrics registry (counters, gauges, log2 histograms) as
 *       JSON on exit; --progress prints a progress line to stderr
 *       every SECS (default 1) seconds; --progress-json atomically
 *       rewrites FILE with machine-readable progress at the same
 *       cadence (what tools/dispatch.sh reads for heartbeats).
 *       --trace and --metrics also work on `campaign`.
 *       --select i/n runs only worker i's share of the suite
 *       (round-robin over the manifest order); --select-hash i/n
 *       partitions on the spec content hash instead, so the share is
 *       invariant to manifest reordering.  Selections 0/n..n-1/n are
 *       disjoint and complete: run each share on its own machine with
 *       its own --out/--out-dir and `store merge` the gathered shards
 *       back into a store byte-identical to the single-host run (see
 *       tools/dispatch.sh).  The selection is recorded in the worker's
 *       store; resuming from another worker's store is fatal.
 *   merlin_cli suite manifest.json --plan n [--hash] [--plan-dir DIR]
 *       Instead of running, emit n per-worker manifests
 *       DIR/worker-<i>-of-<n>.json (defaults resolved, one fully
 *       explicit spec per campaign) partitioned round-robin (or by
 *       content hash with --hash) — for schedulers that ship a
 *       manifest per machine rather than passing --select.
 *   merlin_cli suite --diff A.json B.json
 *       [--axis knob,...] [--confidence C] [--out diff.json]
 *       Differential sweep: join two result stores on the spec content
 *       hash modulo the swept --axis knobs (manifest member names,
 *       e.g. l1d_kb) and report per-campaign and aggregate B-A deltas
 *       (AVF, class counts, injection runs, early-exit rate), each
 *       with a sampling confidence interval.  Output is deterministic:
 *       sorted rows, byte-stable JSON with --out.
 *   merlin_cli store merge --out merged.json [--force-theirs]
 *       input... (store files and/or shard directories)
 *       Fold result stores/shards into one store.  A key on both sides
 *       must carry bit-identical payloads; --force-theirs resolves
 *       conflicts by taking the later input.  Merging a suite's
 *       --out-dir shards reproduces its --out store byte-for-byte.
 *   merlin_cli asm --file prog.s [--campaign rf|sq|l1d]
 *       Assemble a user program, run it, optionally run a campaign.
 */

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/parse.hh"
#include "base/strings.hh"
#include "io/result_store.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "isa/interp.hh"
#include "masm/asm.hh"
#include "merlin/campaign.hh"
#include "sched/diff.hh"
#include "sched/suite.hh"
#include "uarch/core.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace merlin;

/** Minimal --key value / --flag parser. */
struct Args
{
    std::map<std::string, std::string> kv;

    static Args
    parse(int argc, char **argv, int start)
    {
        Args a;
        for (int i = start; i < argc; ++i) {
            std::string k = argv[i];
            if (k.rfind("--", 0) != 0)
                fatal("unexpected argument '", k, "'");
            k = k.substr(2);
            // --key=value style.
            if (const auto eq = k.find('='); eq != std::string::npos) {
                a.kv[k.substr(0, eq)] = k.substr(eq + 1);
                continue;
            }
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
                a.kv[k] = argv[++i];
            } else {
                a.kv[k] = "1"; // boolean flag
            }
        }
        return a;
    }

    bool has(const std::string &k) const { return kv.count(k) != 0; }
    std::string
    get(const std::string &k, const std::string &def = "") const
    {
        auto it = kv.find(k);
        return it == kv.end() ? def : it->second;
    }
    /** Unsigned value of --k; fatal() on garbage instead of reading 0. */
    std::uint64_t
    getU(const std::string &k, std::uint64_t def) const
    {
        auto it = kv.find(k);
        if (it == kv.end())
            return def;
        // One strict parser for every numeric flag (base::parseU64):
        // signs, whitespace, trailing junk and overflow are all fatal,
        // where raw strtoull would wrap "-1" to 2^64-1 silently.
        return base::parseU64(it->second, "--" + k);
    }
    /** Like getU but range-checked for `unsigned` destinations, so a
     *  2^32 cannot truncate to 0 (for --jobs: "all threads"). */
    unsigned
    getU32(const std::string &k, unsigned def) const
    {
        auto it = kv.find(k);
        if (it == kv.end())
            return def;
        return base::parseU32(it->second, "--" + k);
    }
    /** on/off value of --k; fatal() on anything else. */
    bool
    getOnOff(const std::string &k, bool def) const
    {
        auto it = kv.find(k);
        if (it == kv.end())
            return def;
        if (it->second == "on" || it->second == "1")
            return true;
        if (it->second == "off" || it->second == "0")
            return false;
        fatal("--", k, ": '", it->second, "' is not on|off");
    }
    /** Floating-point value of --k; fatal() on garbage. */
    double
    getD(const std::string &k, double def) const
    {
        auto it = kv.find(k);
        if (it == kv.end())
            return def;
        return base::parseDouble(it->second, "--" + k);
    }
};

/** Write @p text to @p path atomically (temp file + rename). */
void
writeTextFile(const std::string &path, const std::string &text)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            fatal("cannot write '", tmp, "'");
        os << text;
        os.flush();
        os.close();
        if (!os.good())
            fatal("write to '", tmp, "' failed (disk full?)");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename '", tmp, "' to '", path, "'");
}

/**
 * Telemetry flags shared by `campaign` and `suite`: --trace=FILE
 * records Chrome trace_event spans, --metrics=FILE dumps the metrics
 * registry snapshot.  Strictly out-of-band — simulation results and
 * store/journal bytes are identical with or without them.
 */
void
startTelemetry(const Args &args)
{
    const std::string trace = args.get("trace");
    if (!trace.empty())
        obs::TraceWriter::global().start(trace);
}

void
finishTelemetry(const Args &args)
{
    if (obs::TraceWriter::global().finish())
        std::printf("trace written to %s\n", args.get("trace").c_str());
    const std::string metrics = args.get("metrics");
    if (!metrics.empty()) {
        writeTextFile(metrics,
                      obs::Registry::global().snapshot().toJson().dump(2) +
                          "\n");
        std::printf("metrics written to %s\n", metrics.c_str());
    }
}

uarch::Structure
parseStructure(const std::string &s)
{
    if (s == "rf" || s == "RF")
        return uarch::Structure::RegisterFile;
    if (s == "sq" || s == "SQ")
        return uarch::Structure::StoreQueue;
    if (s == "l1d" || s == "L1D")
        return uarch::Structure::L1DCache;
    fatal("unknown structure '", s, "' (use rf | sq | l1d)");
}

int
cmdList()
{
    std::printf("MiBench-like (run to completion):\n");
    for (const auto &n : workloads::mibenchWorkloads()) {
        auto w = workloads::buildWorkload(n);
        std::printf("  %-14s %s\n", n.c_str(), w.description.c_str());
    }
    std::printf("SPEC-like (SimPoint-style windows):\n");
    for (const auto &n : workloads::specWorkloads()) {
        auto w = workloads::buildWorkload(n);
        std::printf("  %-14s window=%llu  %s\n", n.c_str(),
                    static_cast<unsigned long long>(w.suggestedWindow),
                    w.description.c_str());
    }
    return 0;
}

int
cmdRun(const Args &args)
{
    auto w = workloads::buildWorkload(args.get("workload", "qsort"));
    uarch::Core core(w.program, uarch::CoreConfig{});
    auto r = core.run();
    const auto &st = core.stats();
    std::printf("%s: %llu instructions, %llu cycles, IPC %.2f\n",
                w.program.name.c_str(),
                static_cast<unsigned long long>(r.instret),
                static_cast<unsigned long long>(st.cycles), st.ipc());
    std::printf("branches: %llu cond, %llu mispredicted (%.1f%%)\n",
                static_cast<unsigned long long>(st.condBranches),
                static_cast<unsigned long long>(st.branchMispredicts),
                st.condBranches ? 100.0 * st.branchMispredicts /
                                      st.condBranches
                                : 0.0);
    std::printf("L1D: %llu hits, %llu misses; %llu store-forwards\n",
                static_cast<unsigned long long>(st.l1dHits),
                static_cast<unsigned long long>(st.l1dMisses),
                static_cast<unsigned long long>(st.storeForwards));
    std::printf("output %s the reference implementation\n",
                r.output == w.expectedOutput ? "matches"
                                             : "DOES NOT match");
    return r.output == w.expectedOutput ? 0 : 1;
}

void
printCampaign(const core::CampaignResult &r, std::uint64_t bits)
{
    std::printf("golden: %llu instructions, %llu cycles; ACE-like AVF "
                "%.2f%%\n",
                static_cast<unsigned long long>(r.goldenInstret),
                static_cast<unsigned long long>(r.goldenCycles),
                100 * r.aceAvf);
    std::printf("faults: %llu initial -> %llu survivors -> %llu "
                "injected (%.1fX / %.1fX)\n",
                static_cast<unsigned long long>(r.initialFaults),
                static_cast<unsigned long long>(r.survivors),
                static_cast<unsigned long long>(r.injections),
                r.speedupAce, r.speedupTotal);
    for (unsigned c = 0; c < faultsim::NUM_OUTCOMES; ++c) {
        auto o = static_cast<faultsim::Outcome>(c);
        if (r.merlinEstimate.of(o) == 0)
            continue;
        std::printf("  %-8s %7.3f%%\n", faultsim::outcomeName(o),
                    100.0 * r.merlinEstimate.fraction(o));
    }
    std::printf("AVF %.3f%%  FIT %.4f (0.01 FIT/bit x %llu bits)\n",
                100 * r.merlinEstimate.avf(), r.merlinFit(bits),
                static_cast<unsigned long long>(bits));
    if (r.survivorTruth) {
        std::printf("ground truth: AVF %.3f%%; max class inaccuracy "
                    "%.2f pp; homogeneity %.3f\n",
                    100 * r.fullTruth().avf(),
                    r.merlinEstimate.maxInaccuracyVs(r.fullTruth()),
                    r.homogeneity->fine);
    }
    if (r.injectionRuns) {
        std::printf("early exit: %llu of %llu runs reconverged with the "
                    "golden state (%.1f%%)\n",
                    static_cast<unsigned long long>(r.earlyExits),
                    static_cast<unsigned long long>(r.injectionRuns),
                    100.0 * r.earlyExitRate());
    }
    if (r.replayMasked + r.replayHandoffs) {
        std::printf("replay: %llu dead flips shortcut Masked, %llu "
                    "handed off to simulation (divergence rate %.1f%%)"
                    "\n",
                    static_cast<unsigned long long>(r.replayMasked),
                    static_cast<unsigned long long>(r.replayHandoffs),
                    100 * r.replayDivergenceRate());
        std::printf("replay: %llu of %llu head cycles skipped "
                    "(%.1f%%)\n",
                    static_cast<unsigned long long>(
                        r.replayCyclesSkipped),
                    static_cast<unsigned long long>(r.replayHeadCycles),
                    100 * r.replaySkipRate());
    }
    if (!r.quarantine.empty()) {
        std::printf("quarantined: %zu injection%s failed the simulator "
                    "and %s counted Crash:\n",
                    r.quarantine.size(),
                    r.quarantine.size() == 1 ? "" : "s",
                    r.quarantine.size() == 1 ? "was" : "were");
        for (const auto &q : r.quarantine)
            std::printf("  fault 0x%016llx: %s\n",
                        static_cast<unsigned long long>(q.faultKey),
                        q.reason.c_str());
    }
    std::printf("wall clock: %.2fs profile + %.2fs injections "
                "(%.3f ms/injection)\n",
                r.profileSeconds, r.injectionSeconds,
                1e3 * r.secondsPerInjection);
}

/** --quarantine=fail|continue (the fault-tolerance policy switch). */
bool
parseQuarantineFail(const Args &args)
{
    const std::string q = args.get("quarantine", "continue");
    if (q == "continue")
        return false;
    if (q == "fail")
        return true;
    fatal("--quarantine: '", q, "' is not fail|continue");
}

/** Reject flags outside @p known — a typo'd flag must not silently
 *  fall back to a default (e.g. --axes degenerating to an exact
 *  join with zero pairs). */
void
requireKnownFlags(const Args &args,
                  std::initializer_list<const char *> known,
                  const char *what)
{
    for (const auto &[flag, value] : args.kv) {
        (void)value;
        bool ok = false;
        for (const char *k : known)
            ok = ok || flag == k;
        if (!ok)
            fatal(what, ": unknown flag '--", flag, "'");
    }
}

core::CampaignConfig
campaignConfig(const Args &args, std::uint64_t default_window)
{
    core::CampaignConfig cc;
    cc.target = parseStructure(args.get("structure", "rf"));
    cc.core = uarch::CoreConfig{}
                  .withRegisterFile(args.getU32("regs", 256))
                  .withStoreQueue(args.getU32("sq", 64))
                  .withL1dKb(args.getU32("l1d", 64));
    cc.core.instructionWindowEnd = args.getU("window", default_window);
    if (args.has("faults")) {
        cc.sampling = core::specFixed(args.getU("faults", 2000));
    } else if (args.has("margin")) {
        cc.sampling.errorMargin = args.getD("margin", 0.0063);
        cc.sampling.confidence = args.getD("conf", 0.998);
    } else {
        cc.sampling = core::specFixed(2000);
    }
    cc.seed = args.getU("seed", 1);
    cc.jobs = args.getU32("jobs", 1);
    cc.checkpointInterval = args.getU(
        "checkpoint-interval",
        faultsim::InjectionRunner::kDefaultCheckpointInterval);
    cc.maxCheckpoints = args.getU32(
        "max-checkpoints",
        faultsim::InjectionRunner::kDefaultMaxCheckpoints);
    cc.earlyExit = args.getOnOff("early-exit", true);
    cc.replay = args.getOnOff("replay", true);
    cc.timeoutFactor = args.getU32(
        "timeout-factor", faultsim::RunnerOptions::kDefaultTimeoutFactor);
    const std::uint64_t chunk = args.getU(
        "mem-chunk-bytes", isa::SegmentedMemory::kDefaultChunkBytes);
    if (!isa::isValidChunkBytes(chunk))
        fatal("--mem-chunk-bytes: ", chunk,
              " is not a power of two >= 64");
    cc.core.memChunkBytes = static_cast<std::uint32_t>(chunk);
    cc.injectWallLimit = args.getD("inject-wall-limit", 0.0);
    cc.quarantineFail = parseQuarantineFail(args);
    return cc;
}

int
cmdCampaign(const Args &args)
{
    requireKnownFlags(args,
                      {"workload", "structure", "regs", "sq", "l1d",
                       "faults", "margin", "conf", "seed", "window",
                       "truth", "relyzer", "jobs",
                       "checkpoint-interval", "max-checkpoints",
                       "early-exit", "replay", "mem-chunk-bytes",
                       "timeout-factor", "inject-wall-limit",
                       "quarantine", "trace", "metrics"},
                      "campaign");
    auto w = workloads::buildWorkload(args.get("workload", "qsort"));
    core::CampaignConfig cc = campaignConfig(
        args, args.has("window") ? 0 : w.suggestedWindow);
    startTelemetry(args);
    core::Campaign camp(w.program, cc);
    auto r = args.has("relyzer") ? camp.runRelyzer(args.has("truth"))
                                 : camp.run(args.has("truth"));
    finishTelemetry(args);
    std::printf("== %s / %s ==\n", w.program.name.c_str(),
                uarch::structureName(cc.target));
    printCampaign(r, [&] {
        switch (cc.target) {
          case uarch::Structure::RegisterFile:
            return std::uint64_t(cc.core.numPhysIntRegs) * 64;
          case uarch::Structure::StoreQueue:
            return std::uint64_t(cc.core.sqEntries) * 64;
          default:
            return std::uint64_t(cc.core.l1d.totalWords()) * 64;
        }
    }());
    return 0;
}

/**
 * suite --plan n: emit one manifest per worker instead of running.
 * Each output holds that worker's selection, fully resolved (defaults
 * folded in, every member explicit), so running it — with or without
 * a further --select — spills shards that merge back into exactly the
 * single-host store.
 */
int
cmdSuitePlan(const std::vector<sched::CampaignSpec> &specs,
             const Args &args)
{
    const std::uint64_t n = args.getU("plan", 0);
    if (n == 0)
        fatal("--plan: worker count must be >= 1");
    if (n > specs.size())
        fatal("--plan: ", n, " workers for ", specs.size(),
              " campaign", specs.size() == 1 ? "" : "s",
              " — at least one per-worker manifest would be empty");
    const auto mode = args.has("hash")
                          ? sched::SpecSelector::Mode::Hash
                          : sched::SpecSelector::Mode::RoundRobin;
    const std::string dir = args.get("plan-dir", "plan");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("--plan: cannot create directory '", dir,
              "': ", ec.message());

    for (std::uint64_t i = 0; i < n; ++i) {
        sched::SpecSelector sel;
        sel.mode = mode;
        sel.index = i;
        sel.count = n;
        io::Json camps = io::Json::array();
        for (std::size_t j = 0; j < specs.size(); ++j) {
            if (sel.selects(j, specs[j].key()))
                camps.push(specs[j].toJson());
        }
        if (camps.size() == 0)
            fatal("--plan: worker ", i, " of ", n, " selects no "
                  "campaigns under hash partitioning — use fewer "
                  "workers or round-robin");
        io::Json manifest = io::Json::object();
        manifest.set("campaigns", camps);
        const std::string path =
            (std::filesystem::path(dir) /
             ("worker-" + std::to_string(i) + "-of-" +
              std::to_string(n) + ".json"))
                .string();
        writeTextFile(path, manifest.dump(2) + "\n");
        std::printf("%s: %zu campaign%s (%s)\n", path.c_str(),
                    camps.size(), camps.size() == 1 ? "" : "s",
                    sel.describe().c_str());
    }
    return 0;
}

int
cmdSuite(const std::string &manifest_path, const Args &args)
{
    std::ifstream in(manifest_path);
    if (!in)
        fatal("cannot open manifest '", manifest_path, "'");
    std::stringstream ss;
    ss << in.rdbuf();
    std::vector<sched::CampaignSpec> specs =
        sched::parseManifest(io::Json::parse(ss.str()));

    if (args.has("plan")) {
        requireKnownFlags(args, {"plan", "plan-dir", "hash"},
                          "suite --plan");
        return cmdSuitePlan(specs, args);
    }
    requireKnownFlags(args,
                      {"jobs", "out", "out-dir", "resume", "no-timing",
                       "sections", "select", "select-hash", "quarantine",
                       "inject-wall-limit", "trace", "metrics",
                       "progress", "progress-json"},
                      "suite");

    sched::SuiteOptions opts;
    opts.jobs = args.getU32("jobs", 1);
    opts.storePath = args.get("out");
    opts.shardDir = args.get("out-dir");
    opts.reuseCached = args.has("resume");
    opts.recordTiming = !args.has("no-timing");
    opts.sections = args.getU32("sections", 0);
    if (args.has("sections") &&
        (opts.sections == 0 || opts.sections > 4096))
        fatal("--sections must be in [1, 4096]");
    opts.injectWallLimit = args.getD("inject-wall-limit", 0.0);
    opts.quarantineFail = parseQuarantineFail(args);
    // --progress / --progress=SECS: periodic stderr line (a bare flag
    // parses as "1" — one second).  --progress-json FILE additionally
    // rewrites a machine-readable progress file at the same cadence.
    opts.progressStderr = args.has("progress");
    opts.progressInterval = args.getD("progress", 1.0);
    opts.progressPath = args.get("progress-json");
    if (opts.reuseCached && opts.storePath.empty())
        fatal("--resume requires --out <results.json>");
    if (args.has("select") && args.has("select-hash"))
        fatal("suite: --select and --select-hash are mutually "
              "exclusive");
    if (args.has("select"))
        opts.select = sched::SpecSelector::parse(
            args.get("select"), sched::SpecSelector::Mode::RoundRobin);
    else if (args.has("select-hash"))
        opts.select = sched::SpecSelector::parse(
            args.get("select-hash"), sched::SpecSelector::Mode::Hash);

    startTelemetry(args);
    sched::SuiteScheduler scheduler(specs, opts);
    sched::SuiteResult suite = scheduler.run();
    finishTelemetry(args);

    // New columns go AFTER ee%: downstream consumers (CI's awk among
    // them) address AVF% as whitespace-separated field 7.
    std::printf("%-14s %-4s %-13s %10s %10s %10s %8s %6s %6s %6s %s\n",
                "workload", "tgt", "mode", "initial", "survivors",
                "injected", "AVF%", "ee%", "skip%", "div%", "");
    std::uint64_t cached = 0;
    std::uint64_t selected = 0;
    std::uint64_t sectionsHit = 0;
    std::uint64_t sectionsMissed = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!suite.selected[i])
            continue; // another worker's share
        const auto &r = suite.results[i];
        ++selected;
        cached += suite.cached[i] ? 1 : 0;
        sectionsHit += suite.sectionsHit[i];
        sectionsMissed += suite.sectionsMissed[i];
        // Trailing tags, strictly after every numeric column:
        // [cached] for whole-campaign hits, [sections h/N] for the
        // section-eligible campaigns of a --sections run.
        std::string tag = suite.cached[i] ? "[cached]" : "";
        if (suite.sectionsHit[i] + suite.sectionsMissed[i] > 0) {
            if (!tag.empty())
                tag += ' ';
            tag += "[sections " + std::to_string(suite.sectionsHit[i]) +
                   "/" +
                   std::to_string(suite.sectionsHit[i] +
                                  suite.sectionsMissed[i]) +
                   "]";
        }
        std::printf(
            "%-14s %-4s %-13s %10llu %10llu %10llu %7.3f%% %5.1f%% "
            "%5.1f%% %5.1f%% %s\n",
            specs[i].workload.c_str(),
            uarch::structureName(specs[i].structure),
            specs[i].mode == sched::CampaignSpec::Mode::GroupingOnly
                ? "grouping-only"
                : (specs[i].mode == sched::CampaignSpec::Mode::Truth
                       ? "truth"
                       : "estimate"),
            static_cast<unsigned long long>(r.initialFaults),
            static_cast<unsigned long long>(r.survivors),
            static_cast<unsigned long long>(r.injections),
            100 * r.merlinEstimate.avf(), 100 * r.earlyExitRate(),
            100 * r.replaySkipRate(), 100 * r.replayDivergenceRate(),
            tag.c_str());
    }
    std::printf("\n%llu campaigns (%llu run, %llu cached) in %.2fs "
                "with --jobs %u\n",
                static_cast<unsigned long long>(selected),
                static_cast<unsigned long long>(suite.campaignsRun),
                static_cast<unsigned long long>(cached),
                suite.wallSeconds, opts.jobs);
    if (opts.sections > 0) {
        std::printf("sections (--sections %u): %llu hit, %llu missed\n",
                    opts.sections,
                    static_cast<unsigned long long>(sectionsHit),
                    static_cast<unsigned long long>(sectionsMissed));
        // Composed per-campaign AVF with its Leveugle sampling margin:
        // the CI is a function of the INITIAL sample size, so partial
        // composition leaves it — like the AVF itself — identical to
        // a cold full run's.
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (!suite.selected[i] ||
                suite.sectionsHit[i] + suite.sectionsMissed[i] == 0)
                continue;
            const auto &r = suite.results[i];
            const double confidence = specs[i].sampling.confidence;
            const std::optional<double> margin =
                sched::samplingMargin(r.initialFaults, confidence);
            if (margin) {
                std::printf("  %-14s %-4s composed AVF %7.3f%% +- "
                            "%.3fpp at %.3g%% confidence\n",
                            specs[i].workload.c_str(),
                            uarch::structureName(specs[i].structure),
                            100 * r.merlinEstimate.avf(), 100 * *margin,
                            100 * confidence);
            } else {
                std::printf("  %-14s %-4s composed AVF %7.3f%% (no "
                            "sampling margin: zero initial faults)\n",
                            specs[i].workload.c_str(),
                            uarch::structureName(specs[i].structure),
                            100 * r.merlinEstimate.avf());
            }
        }
    }
    if (suite.injectionsSimulated && suite.wallSeconds > 0.0) {
        std::printf("throughput: %llu injections at %.0f/s\n",
                    static_cast<unsigned long long>(
                        suite.injectionsSimulated),
                    static_cast<double>(suite.injectionsSimulated) /
                        suite.wallSeconds);
    }
    if (opts.select) {
        // The suite report records the selection: which share of the
        // manifest this worker ran, and what it left for the others.
        std::printf("selection %s: %llu of %zu manifest campaigns\n",
                    opts.select->describe().c_str(),
                    static_cast<unsigned long long>(selected),
                    specs.size());
    }
    if (!opts.storePath.empty())
        std::printf("results written to %s\n", opts.storePath.c_str());
    if (!opts.shardDir.empty())
        std::printf("shards spilled to %s/\n", opts.shardDir.c_str());
    return 0;
}

io::ResultStore
loadStore(const std::string &path)
{
    io::ResultStore store(path);
    if (!store.load())
        fatal("cannot open result store '", path, "'");
    return store;
}

int
cmdSuiteDiff(const std::string &path_a, const std::string &path_b,
             const Args &args)
{
    requireKnownFlags(args, {"axis", "confidence", "out"},
                      "suite --diff");
    const io::ResultStore a = loadStore(path_a);
    const io::ResultStore b = loadStore(path_b);

    sched::DiffOptions dopts;
    dopts.axis = base::splitCommaList(args.get("axis"));
    dopts.confidence = args.getD("confidence", dopts.confidence);

    sched::SuiteDiffResult diff =
        sched::SuiteDiff(a, b, dopts).run();
    std::fputs(diff.table().c_str(), stdout);

    const std::string out = args.get("out");
    if (!out.empty()) {
        writeTextFile(out, diff.toJson().dump(2) + "\n");
        std::printf("diff written to %s\n", out.c_str());
    }
    return 0;
}

int
cmdStoreMerge(int argc, char **argv, int start)
{
    std::string out;
    bool force_theirs = false;
    std::vector<std::string> inputs;
    for (int i = start; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--force-theirs") {
            force_theirs = true;
        } else if (a == "--out") {
            if (++i >= argc)
                fatal("--out requires a path");
            out = argv[i];
        } else if (a.rfind("--out=", 0) == 0) {
            out = a.substr(6);
        } else if (a.rfind("--", 0) == 0) {
            fatal("store merge: unknown flag '", a, "'");
        } else {
            inputs.push_back(a);
        }
    }
    if (out.empty())
        fatal("store merge requires --out <merged.json>");
    if (inputs.empty())
        fatal("store merge requires at least one input store or "
              "shard directory");

    // The gather half of distributed dispatch, shared with the tests:
    // expand shard directories (sorted members), then fold every
    // store into one.  Worker stores carry a recorded selection;
    // merge() drops it, so the merged store is byte-identical to the
    // single-host run whatever the gather order.
    const std::vector<std::string> files = io::gatherStoreFiles(inputs);
    io::ResultStore merged(out);
    const io::ResultStore::MergeStats total =
        io::mergeStoreFiles(merged, files, force_theirs);
    merged.save();
    std::printf("merged %zu input%s -> %s: %zu campaigns "
                "(%zu added, %zu identical, %zu replaced)\n",
                files.size(), files.size() == 1 ? "" : "s",
                out.c_str(), merged.size(), total.added,
                total.identical, total.replaced);
    return 0;
}

int
cmdAsm(const Args &args)
{
    const std::string path = args.get("file");
    if (path.empty())
        fatal("asm requires --file <program.s>");
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '", path, "'");
    std::stringstream ss;
    ss << in.rdbuf();
    isa::Program prog = masm::assemble(ss.str(), path);
    std::printf("assembled %llu instructions, %zu data bytes\n",
                static_cast<unsigned long long>(
                    prog.instructionCount()),
                prog.data.size());

    uarch::Core core(prog, uarch::CoreConfig{});
    auto r = core.run();
    std::printf("run: reason=%d exit=%d, %llu instructions, %llu "
                "cycles, %zu output bytes\n",
                static_cast<int>(r.reason), r.exitCode,
                static_cast<unsigned long long>(r.instret),
                static_cast<unsigned long long>(core.stats().cycles),
                r.output.size());

    if (args.has("campaign")) {
        Args a2 = args;
        a2.kv["structure"] = args.get("campaign");
        core::CampaignConfig cc = campaignConfig(a2, 0);
        core::Campaign camp(prog, cc);
        auto res = camp.run(a2.has("truth"));
        printCampaign(res, 64ULL * 64);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: merlin_cli "
                     "<list|run|campaign|suite|store|asm> [--flags]\n");
        return 2;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "suite") {
            if (argc >= 3 && std::strcmp(argv[2], "--diff") == 0) {
                if (argc < 5 ||
                    std::strncmp(argv[3], "--", 2) == 0 ||
                    std::strncmp(argv[4], "--", 2) == 0) {
                    std::fprintf(stderr,
                                 "usage: merlin_cli suite --diff "
                                 "A.json B.json [--axis knob,...] "
                                 "[--confidence C] "
                                 "[--out diff.json]\n");
                    return 2;
                }
                return cmdSuiteDiff(argv[3], argv[4],
                                    Args::parse(argc, argv, 5));
            }
            if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
                std::fprintf(stderr,
                             "usage: merlin_cli suite manifest.json "
                             "[--jobs N] [--out results.json] "
                             "[--out-dir DIR] [--resume] "
                             "[--no-timing] [--sections N] "
                             "[--select i/n | --select-hash i/n] "
                             "[--quarantine=fail|continue] "
                             "[--inject-wall-limit SECONDS] "
                             "[--trace trace.json] "
                             "[--metrics metrics.json] "
                             "[--progress[=SECS]] "
                             "[--progress-json FILE] | "
                             "--plan n [--hash] [--plan-dir DIR]\n");
                return 2;
            }
            return cmdSuite(argv[2], Args::parse(argc, argv, 3));
        }
        if (cmd == "store") {
            if (argc < 3 || std::strcmp(argv[2], "merge") != 0) {
                std::fprintf(stderr,
                             "usage: merlin_cli store merge --out "
                             "merged.json [--force-theirs] "
                             "input...\n");
                return 2;
            }
            return cmdStoreMerge(argc, argv, 3);
        }
        Args args = Args::parse(argc, argv, 2);
        if (cmd == "list")
            return cmdList();
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "campaign")
            return cmdCampaign(args);
        if (cmd == "asm")
            return cmdAsm(args);
        std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
