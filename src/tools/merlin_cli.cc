/**
 * @file
 * merlin_cli — command-line front end for the library.
 *
 *   merlin_cli list
 *       List the bundled workloads.
 *   merlin_cli run --workload qsort
 *       Execute a workload on the out-of-order core; print timing stats
 *       and verify the output against the reference implementation.
 *   merlin_cli campaign --workload qsort --structure rf
 *       [--regs N] [--sq N] [--l1d KB] [--faults N | --margin E --conf C]
 *       [--seed N] [--window N] [--truth] [--relyzer]
 *       [--jobs N] [--checkpoint-interval CYCLES] [--max-checkpoints N]
 *       [--early-exit=on|off] [--replay=on|off]
 *       [--mem-chunk-bytes N] [--timeout-factor N]
 *       Run a MeRLiN campaign and print the reliability report.
 *       --jobs N spreads the injections over N worker threads (0 = all
 *       hardware threads); results are bit-identical for any N.
 *       --checkpoint-interval sets the golden-run snapshot cadence the
 *       injections resume from (0 disables checkpointing);
 *       --max-checkpoints bounds how many are retained.
 *       --early-exit ends faulty runs at the first golden checkpoint
 *       they provably reconverged with (classification-preserving; on
 *       by default).  --replay consults the golden effect trace to
 *       classify dead flips Masked without simulation and to resume
 *       diverging flips at the last pre-divergence checkpoint
 *       (classification-preserving; on by default — off only for A/B
 *       validation).  --mem-chunk-bytes sets the copy-on-write chunk
 *       granularity of memory/cache state (power of two >= 64).
 *       Neither changes campaign outcomes.  --timeout-factor scales
 *       the paper's 3x-golden timeout rule — it moves the Timeout
 *       classification boundary, so keep the default when comparing
 *       against paper numbers.
 *       --inject-wall-limit SECONDS arms a real-wall-clock watchdog
 *       per faulty run (distinct from the simulated-cycle timeout);
 *       an injection that trips it — or that throws out of the
 *       simulator — is quarantined: recorded by fault key + reason,
 *       counted Crash, and the campaign keeps going.
 *       --quarantine=fail aborts on the first quarantined injection
 *       instead (default: continue).
 *   merlin_cli suite manifest.json
 *       [--jobs N] [--out results.json] [--out-dir DIR] [--resume]
 *       [--no-timing] [--sections N]
 *       [--select i/n | --select-hash i/n]
 *       [--quarantine=fail|continue] [--inject-wall-limit SECONDS]
 *       [--trace trace.json] [--metrics metrics.json]
 *       [--progress[=SECS]] [--progress-json FILE]
 *       Run a whole suite of campaigns (one JSON manifest entry each)
 *       on one shared worker pool: profiles overlap and workers steal
 *       injections across campaigns, with bit-identical results for
 *       any --jobs.  --out persists every CampaignResult keyed by a
 *       content hash of its spec; with --resume, specs already in the
 *       file are served from it (cache hits / crash recovery), and a
 *       campaign that was KILLED midway resumes from its outcome
 *       journal (an append-only fsync'd file beside the shard spill)
 *       with results byte-identical to an uninterrupted run.
 *       --out-dir additionally spills every campaign as a single-entry
 *       shard file DIR/<key>.json for `store merge`.  --no-timing
 *       zeroes wall-clock fields so the results file is byte-identical
 *       across runs.
 *       --sections N turns on incremental (partial-hit) caching: each
 *       eligible campaign's golden run is cut into N equal cycle
 *       intervals, per-section outcome slices are stored keyed at
 *       (spec minus swept knobs, currently mem_chunk_bytes) x section
 *       in the merlin-store-v2 shape, and a --resume whose spec
 *       differs only in a swept knob re-injects ONLY the sections the
 *       store is missing — with the composed result byte-identical to
 *       a cold full run.  The report tags eligible campaigns with
 *       [sections hit/N] and prints each composed AVF with its
 *       Leveugle sampling margin.
 *       Telemetry (all strictly out-of-band — results and store bytes
 *       are byte-identical with or without it): --trace records every
 *       scheduler/campaign/injection/store span as Chrome trace_event
 *       JSON (load in chrome://tracing or Perfetto); --metrics dumps
 *       the metrics registry (counters, gauges, log2 histograms) as
 *       JSON on exit; --progress prints a progress line to stderr
 *       every SECS (default 1) seconds; --progress-json atomically
 *       rewrites FILE with machine-readable progress at the same
 *       cadence (what tools/dispatch.sh reads for heartbeats).
 *       --trace and --metrics also work on `campaign`.
 *       --select i/n runs only worker i's share of the suite
 *       (round-robin over the manifest order); --select-hash i/n
 *       partitions on the spec content hash instead, so the share is
 *       invariant to manifest reordering.  Selections 0/n..n-1/n are
 *       disjoint and complete: run each share on its own machine with
 *       its own --out/--out-dir and `store merge` the gathered shards
 *       back into a store byte-identical to the single-host run (see
 *       tools/dispatch.sh).  The selection is recorded in the worker's
 *       store; resuming from another worker's store is fatal.
 *   merlin_cli suite manifest.json --plan n [--hash] [--plan-dir DIR]
 *       Instead of running, emit n per-worker manifests
 *       DIR/worker-<i>-of-<n>.json (defaults resolved, one fully
 *       explicit spec per campaign) partitioned round-robin (or by
 *       content hash with --hash) — for schedulers that ship a
 *       manifest per machine rather than passing --select.
 *   merlin_cli suite --diff A.json B.json
 *       [--axis knob,...] [--confidence C] [--out diff.json]
 *       Differential sweep: join two result stores on the spec content
 *       hash modulo the swept --axis knobs (manifest member names,
 *       e.g. l1d_kb) and report per-campaign and aggregate B-A deltas
 *       (AVF, class counts, injection runs, early-exit rate), each
 *       with a sampling confidence interval.  Output is deterministic:
 *       sorted rows, byte-stable JSON with --out.
 *   merlin_cli store merge --out merged.json [--force-theirs]
 *       input... (store files and/or shard directories)
 *       Fold result stores/shards into one store.  A key on both sides
 *       must carry bit-identical payloads; --force-theirs resolves
 *       conflicts by taking the later input.  Merging a suite's
 *       --out-dir shards reproduces its --out store byte-for-byte.
 *   merlin_cli asm --file prog.s [--campaign rf|sq|l1d]
 *       Assemble a user program, run it, optionally run a campaign.
 *
 * Campaign-service client mode (see docs/wire-protocol.md and
 * `merlin_serve --help` for the daemon side):
 *
 *   merlin_cli submit manifest.json --socket PATH
 *       [--client NAME] [--no-resume] [--no-wait]
 *       Submit every manifest spec to a running merlin_serve daemon.
 *       The daemon serves store hits, coalesces identical in-flight
 *       specs across clients (one simulation, every subscriber gets
 *       the identical bytes), and persists to ITS store.  By default
 *       the client waits and prints the same suite report the batch
 *       `suite` command prints; --no-wait just prints each spec's
 *       content key.  --no-resume forces re-runs instead of cache
 *       hits.
 *   merlin_cli status --socket PATH [--key K]
 *       Daemon queue/stats snapshot, or one spec key's state.
 *   merlin_cli result --socket PATH --key K [--out FILE]
 *       Fetch one campaign result by spec content key (waits if it is
 *       still queued/running); prints the campaign report, or writes
 *       the raw result JSON with --out.
 *   merlin_cli shutdown --socket PATH [--cancel-queued]
 *       Ask the daemon to drain and exit (same policy as SIGTERM):
 *       running campaigns complete and persist; --cancel-queued hands
 *       queued submissions back as cancelled instead of running them.
 *
 * All command implementations live in cmd_*.cc over the shared
 * cli_spec parsing helpers; main() only dispatches.
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "tools/cli_cmds.hh"

int
main(int argc, char **argv)
{
    using namespace merlin::tools;

    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: merlin_cli "
                     "<list|run|campaign|suite|store|asm|"
                     "submit|status|result|shutdown> [--flags]\n");
        return 2;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "suite") {
            if (argc >= 3 && std::strcmp(argv[2], "--diff") == 0) {
                if (argc < 5 ||
                    std::strncmp(argv[3], "--", 2) == 0 ||
                    std::strncmp(argv[4], "--", 2) == 0) {
                    std::fprintf(stderr,
                                 "usage: merlin_cli suite --diff "
                                 "A.json B.json [--axis knob,...] "
                                 "[--confidence C] "
                                 "[--out diff.json]\n");
                    return 2;
                }
                return cmdSuiteDiff(argv[3], argv[4],
                                    Args::parse(argc, argv, 5));
            }
            if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
                std::fprintf(stderr,
                             "usage: merlin_cli suite manifest.json "
                             "[--jobs N] [--out results.json] "
                             "[--out-dir DIR] [--resume] "
                             "[--no-timing] [--sections N] "
                             "[--select i/n | --select-hash i/n] "
                             "[--quarantine=fail|continue] "
                             "[--inject-wall-limit SECONDS] "
                             "[--trace trace.json] "
                             "[--metrics metrics.json] "
                             "[--progress[=SECS]] "
                             "[--progress-json FILE] | "
                             "--plan n [--hash] [--plan-dir DIR]\n");
                return 2;
            }
            return cmdSuite(argv[2], Args::parse(argc, argv, 3));
        }
        if (cmd == "store") {
            if (argc < 3 || std::strcmp(argv[2], "merge") != 0) {
                std::fprintf(stderr,
                             "usage: merlin_cli store merge --out "
                             "merged.json [--force-theirs] "
                             "input...\n");
                return 2;
            }
            return cmdStoreMerge(argc, argv, 3);
        }
        if (cmd == "submit") {
            if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
                std::fprintf(stderr,
                             "usage: merlin_cli submit manifest.json "
                             "--socket PATH [--client NAME] "
                             "[--no-resume] [--no-wait]\n");
                return 2;
            }
            return cmdSubmit(argv[2], Args::parse(argc, argv, 3));
        }
        Args args = Args::parse(argc, argv, 2);
        if (cmd == "list")
            return cmdList();
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "campaign")
            return cmdCampaign(args);
        if (cmd == "asm")
            return cmdAsm(args);
        if (cmd == "status")
            return cmdStatus(args);
        if (cmd == "result")
            return cmdResult(args);
        if (cmd == "shutdown")
            return cmdShutdown(args);
        std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
