/**
 * @file
 * The statistical model of Section 4.4.5.
 *
 * A campaign of F injections is a binomial experiment.  MeRLiN prunes a
 * masked fraction m, partitions the remaining (1-m)F faults into groups
 * of sizes s_i with per-group non-masking probabilities p_i, and reports
 * the group outcome for every member.  The paper shows:
 *
 *   E(k)        = sum_i s_i p_i / F          (comprehensive campaign)
 *   E(k_MeRLiN) = sum_i s_i p_i / F  = E(k)  (mean preserved)
 *   Var(k)        = sum_i s_i   p_i (1-p_i) / F^2
 *   Var(k_MeRLiN) = sum_i s_i^2 p_i (1-p_i) / F^2
 *
 * so MeRLiN's AVF estimator is unbiased, and its variance is inflated
 * by at most max(s_i) — negligible when groups are small and highly
 * homogeneous (p_i near 0 or 1).  This module computes these moments
 * from measured campaign data so benches/tests can verify the claims
 * empirically.
 */

#ifndef MERLIN_MERLIN_THEORY_HH
#define MERLIN_MERLIN_THEORY_HH

#include <cstdint>
#include <vector>

namespace merlin::core
{

/** Group statistics extracted from a ground-truth campaign. */
struct GroupModel
{
    std::uint64_t size = 0; ///< s_i
    double pNonMasked = 0;  ///< p_i (fraction of members non-masked)
};

/** The four moments of Section 4.4.5. */
struct AvfMoments
{
    double meanComprehensive = 0; ///< E(k)
    double meanMerlin = 0;        ///< E(k_MeRLiN)
    double varComprehensive = 0;  ///< Var(k)
    double varMerlin = 0;         ///< Var(k_MeRLiN)
    std::uint64_t maxGroupSize = 0;
};

/**
 * Evaluate the model for a campaign of @p total_faults injections whose
 * non-pruned part is described by @p groups (the pruned remainder has
 * p = 0 and contributes nothing, exactly as the paper's footnote 6).
 */
AvfMoments avfMoments(const std::vector<GroupModel> &groups,
                      std::uint64_t total_faults);

} // namespace merlin::core

#endif // MERLIN_MERLIN_THEORY_HH
