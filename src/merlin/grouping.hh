/**
 * @file
 * MeRLiN's fault-list reduction (Section 3.2): the two-step grouping
 * algorithm, representative selection, and the Relyzer-style
 * control-equivalence baseline of Section 4.4.4.
 *
 * Step 0 (ACE-like prune): faults outside any vulnerable interval are
 * classified Masked with no injection.
 * Step 1: surviving faults are grouped by the (RIP, uPC) of the committed
 * read ending their interval.
 * Step 2: each group splits by byte position within the entry; oversized
 * subgroups split further round-robin across dynamic instances so
 * representatives retain time diversity.  One representative per final
 * group is injected; the group inherits its outcome.
 */

#ifndef MERLIN_MERLIN_GROUPING_HH
#define MERLIN_MERLIN_GROUPING_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "faultsim/fault.hh"
#include "profile/ace.hh"

namespace merlin::core
{

/** A fault that survived the ACE-like prune, with its interval tags. */
struct TaggedFault
{
    faultsim::Fault fault;
    Rip rip = 0;       ///< static instruction ending the interval
    Upc upc = 0;       ///< micro-op within it
    SeqNum endSeq = 0; ///< dynamic instance of the ending read
    Cycle intervalStart = 0; ///< identifies the dynamic interval
};

/** One final group (after both steps). */
struct FaultGroup
{
    Rip rip = 0;
    Upc upc = 0;
    std::uint8_t byte = 0;            ///< 255 when byte-split disabled
    std::vector<std::uint32_t> members; ///< indices into tagged list
    /**
     * Injected members (paper: exactly one).  With repsPerGroup > 1 the
     * group outcome is the majority vote over these — an extension that
     * trades injections for robustness to an unlucky pick.
     */
    std::vector<std::uint32_t> representatives;

    std::uint32_t
    representative() const
    {
        return representatives.front();
    }
};

/** Knobs of the reduction (ablation targets). */
struct GroupingOptions
{
    enum class Split : std::uint8_t
    {
        None,   ///< step 2 disabled (ablation)
        Byte,   ///< the paper's choice
        Nibble, ///< finer split the paper deems unnecessary (ablation)
        Bit,    ///< per-bit groups: the no-aliasing extreme (ablation)
    };
    Split split = Split::Byte;
    /** Subgroups larger than this split across dynamic instances. */
    unsigned maxGroupSize = 100;
    /** Representatives injected per group (1 = the paper's choice). */
    unsigned repsPerGroup = 1;
};

/** Result of the full fault-list reduction. */
struct GroupingResult
{
    std::vector<TaggedFault> survivors; ///< faults in vulnerable intervals
    std::uint64_t aceMasked = 0;        ///< pruned without injection
    std::vector<FaultGroup> groups;     ///< partition of `survivors`

    std::uint64_t
    numInjections() const
    {
        std::uint64_t n = 0;
        for (const auto &g : groups)
            n += g.representatives.size();
        return n;
    }
};

/**
 * Run the ACE-like prune plus the two-step grouping over @p faults.
 * @p rng only breaks representative-selection ties (deterministic
 * given the seed).
 */
GroupingResult groupFaults(const std::vector<faultsim::Fault> &faults,
                           const profile::StructureProfile &profile,
                           const GroupingOptions &opts, Rng &rng);

/**
 * Relyzer's control-equivalence heuristic transplanted to this setting:
 * group survivors by (RIP of the ending read, depth-5 control-flow path
 * of the dynamic instance) and pick ONE random pilot per group,
 * regardless of byte position (Section 4.4.4).
 */
GroupingResult relyzerGroupFaults(
    const std::vector<faultsim::Fault> &faults,
    const profile::StructureProfile &profile,
    const profile::AceProfiler &profiler, unsigned path_depth, Rng &rng);

} // namespace merlin::core

#endif // MERLIN_MERLIN_GROUPING_HH
