#include "merlin/report.hh"

#include <algorithm>

#include "base/logging.hh"

namespace merlin::core
{

using faultsim::Outcome;

std::uint64_t
ClassCounts::total() const
{
    std::uint64_t t = 0;
    for (auto c : counts)
        t += c;
    return t;
}

double
ClassCounts::fraction(Outcome o) const
{
    const std::uint64_t t = total();
    return t ? static_cast<double>(of(o)) / static_cast<double>(t) : 0.0;
}

double
ClassCounts::avf() const
{
    const std::uint64_t t = total();
    if (!t)
        return 0.0;
    return 1.0 - static_cast<double>(of(Outcome::Masked)) /
                     static_cast<double>(t);
}

ClassCounts
ClassCounts::operator+(const ClassCounts &o) const
{
    ClassCounts r;
    for (unsigned i = 0; i < faultsim::NUM_OUTCOMES; ++i)
        r.counts[i] = counts[i] + o.counts[i];
    return r;
}

std::array<double, faultsim::NUM_OUTCOMES>
ClassCounts::inaccuracyVs(const ClassCounts &o) const
{
    std::array<double, faultsim::NUM_OUTCOMES> d{};
    for (unsigned i = 0; i < faultsim::NUM_OUTCOMES; ++i) {
        const double a = fraction(static_cast<Outcome>(i)) * 100.0;
        const double b = o.fraction(static_cast<Outcome>(i)) * 100.0;
        d[i] = std::abs(a - b);
    }
    return d;
}

double
ClassCounts::maxInaccuracyVs(const ClassCounts &o) const
{
    auto d = inaccuracyVs(o);
    return *std::max_element(d.begin(), d.end());
}

double
fitRate(double avf, std::uint64_t bits, double raw_fit_per_bit)
{
    return avf * raw_fit_per_bit * static_cast<double>(bits);
}

HomogeneityReport
computeHomogeneity(
    const std::vector<std::vector<Outcome>> &outcomes_per_group)
{
    HomogeneityReport rep;
    double fine_weighted = 0.0;
    double coarse_weighted = 0.0;
    std::uint64_t perfect = 0;

    for (const auto &group : outcomes_per_group) {
        if (group.empty())
            continue;
        ++rep.groups;
        rep.faults += group.size();

        std::array<std::uint64_t, faultsim::NUM_OUTCOMES> hist{};
        std::uint64_t masked = 0;
        for (Outcome o : group) {
            ++hist[static_cast<unsigned>(o)];
            if (o == Outcome::Masked)
                ++masked;
        }
        const std::uint64_t dominant =
            *std::max_element(hist.begin(), hist.end());
        fine_weighted += static_cast<double>(dominant);

        const std::uint64_t coarse_dom =
            std::max(masked, group.size() - masked);
        coarse_weighted += static_cast<double>(coarse_dom);
        if (coarse_dom == group.size())
            ++perfect;
    }

    if (rep.faults) {
        rep.fine = fine_weighted / static_cast<double>(rep.faults);
        rep.coarse = coarse_weighted / static_cast<double>(rep.faults);
    }
    if (rep.groups) {
        rep.perfectFraction =
            static_cast<double>(perfect) / static_cast<double>(rep.groups);
        rep.avgGroupSize = static_cast<double>(rep.faults) /
                           static_cast<double>(rep.groups);
    }
    return rep;
}

} // namespace merlin::core
