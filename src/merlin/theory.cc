#include "merlin/theory.hh"

#include "base/logging.hh"

namespace merlin::core
{

AvfMoments
avfMoments(const std::vector<GroupModel> &groups,
           std::uint64_t total_faults)
{
    MERLIN_ASSERT(total_faults > 0, "empty campaign");
    const double F = static_cast<double>(total_faults);

    AvfMoments m;
    for (const GroupModel &g : groups) {
        const double s = static_cast<double>(g.size);
        const double p = g.pNonMasked;
        MERLIN_ASSERT(p >= 0.0 && p <= 1.0, "probability domain");
        m.meanComprehensive += s * p;
        m.varComprehensive += s * p * (1.0 - p);
        m.varMerlin += s * s * p * (1.0 - p);
        m.maxGroupSize = std::max(m.maxGroupSize, g.size);
    }
    m.meanComprehensive /= F;
    m.meanMerlin = m.meanComprehensive; // the paper's identity
    m.varComprehensive /= F * F;
    m.varMerlin /= F * F;
    return m;
}

} // namespace merlin::core
