#include "merlin/campaign.hh"

#include <algorithm>
#include <array>

#include "base/logging.hh"
#include "base/threadpool.hh"
#include "obs/clock.hh"
#include "obs/trace.hh"

namespace merlin::core
{

using faultsim::Fault;
using faultsim::GoldenRun;
using faultsim::InjectionRunner;
using faultsim::Outcome;

namespace
{

unsigned
entriesOf(uarch::Structure s, const uarch::CoreConfig &cfg)
{
    switch (s) {
      case uarch::Structure::RegisterFile: return cfg.numPhysIntRegs;
      case uarch::Structure::StoreQueue:   return cfg.sqEntries;
      case uarch::Structure::L1DCache:     return cfg.l1d.totalWords();
    }
    panic("bad structure");
}

} // namespace

ClassCounts
CampaignResult::fullTruth() const
{
    MERLIN_ASSERT(survivorTruth.has_value(), "no ground truth available");
    ClassCounts t = *survivorTruth;
    t.add(Outcome::Masked, aceMasked);
    return t;
}

double
CampaignResult::merlinFit(std::uint64_t bits, double raw_fit_per_bit) const
{
    return fitRate(merlinEstimate.avf(), bits, raw_fit_per_bit);
}

// ------------------------------------------------- sectioned campaigns

void
SectionData::addRun(std::uint64_t fault_key,
                    const faultsim::InjectDetail &detail)
{
    ++injectionRuns;
    if (detail.earlyExit)
        ++earlyExits;
    if (detail.replay == faultsim::ReplayAction::Masked)
        ++replayMasked;
    else if (detail.replay == faultsim::ReplayAction::Handoff)
        ++replayHandoffs;
    replayCyclesSkipped += detail.replayCyclesSkipped;
    replayHeadCycles += detail.replayHeadCycles;
    if (detail.quarantined)
        quarantine.push_back(
            faultsim::QuarantineRecord{fault_key, detail.reason});
}

unsigned
sectionOfCycle(Cycle cycle, Cycle golden_cycles, unsigned sections)
{
    MERLIN_ASSERT(sections > 0 && golden_cycles > 0,
                  "sectionOfCycle on an unsectionable campaign");
    // cycle < 2^40 (the faultKey packing bound) and sections is a
    // small CLI knob, so the product stays well inside 64 bits.
    const std::uint64_t s = cycle * static_cast<std::uint64_t>(sections) /
                            golden_cycles;
    return static_cast<unsigned>(
        std::min<std::uint64_t>(s, sections - 1));
}

bool
sectionable(const PreparedCampaign &prep)
{
    if (prep.groupingOnly || prep.injectAll ||
        prep.result.goldenCycles == 0)
        return false;
    for (const FaultGroup &g : prep.grouping.groups) {
        if (g.representatives.size() != 1)
            return false;
    }
    return true;
}

std::vector<unsigned>
groupSections(const PreparedCampaign &prep, unsigned sections)
{
    MERLIN_ASSERT(sectionable(prep), "campaign is not sectionable");
    // One representative per group means prep.faults[g] is exactly
    // group g's representative (prepare() pushes them in group order).
    MERLIN_ASSERT(prep.faults.size() == prep.grouping.groups.size(),
                  "representative/group mismatch");
    std::vector<unsigned> out;
    out.reserve(prep.faults.size());
    for (const faultsim::Fault &f : prep.faults)
        out.push_back(sectionOfCycle(f.cycle, prep.result.goldenCycles,
                                     sections));
    return out;
}

CampaignResult
composeSectioned(PreparedCampaign prep, std::vector<SectionData> &table,
                 double injection_seconds, std::size_t fresh_faults)
{
    CampaignResult res = std::move(prep.result);
    for (SectionData &s : table) {
        for (std::size_t c = 0; c < s.estimate.counts.size(); ++c)
            res.merlinSurvivorEstimate.counts[c] += s.estimate.counts[c];
        res.injectionRuns += s.injectionRuns;
        res.earlyExits += s.earlyExits;
        res.replayMasked += s.replayMasked;
        res.replayHandoffs += s.replayHandoffs;
        res.replayCyclesSkipped += s.replayCyclesSkipped;
        res.replayHeadCycles += s.replayHeadCycles;
        std::sort(s.quarantine.begin(), s.quarantine.end(),
                  [](const faultsim::QuarantineRecord &a,
                     const faultsim::QuarantineRecord &b) {
                      return a.faultKey != b.faultKey
                                 ? a.faultKey < b.faultKey
                                 : a.reason < b.reason;
                  });
        res.quarantine.insert(res.quarantine.end(), s.quarantine.begin(),
                              s.quarantine.end());
    }
    res.merlinEstimate = res.merlinSurvivorEstimate;
    res.merlinEstimate.add(Outcome::Masked, res.aceMasked);
    std::sort(res.quarantine.begin(), res.quarantine.end(),
              [](const faultsim::QuarantineRecord &a,
                 const faultsim::QuarantineRecord &b) {
                  return a.faultKey != b.faultKey ? a.faultKey < b.faultKey
                                                  : a.reason < b.reason;
              });
    res.injectionSeconds = injection_seconds;
    res.secondsPerInjection =
        fresh_faults ? injection_seconds /
                           static_cast<double>(fresh_faults)
                     : 0.0;
    return res;
}

Campaign::Campaign(const isa::Program &prog, const CampaignConfig &cfg)
    : prog_(prog), cfg_(cfg)
{
}

CampaignResult
Campaign::run(bool inject_all_survivors)
{
    return runImpl(inject_all_survivors, /*relyzer=*/false, 0);
}

CampaignResult
Campaign::runRelyzer(bool inject_all_survivors, unsigned path_depth)
{
    return runImpl(inject_all_survivors, /*relyzer=*/true, path_depth);
}

CampaignResult
Campaign::runGroupingOnly(bool relyzer, unsigned path_depth)
{
    groupingOnly_ = true;
    CampaignResult r = runImpl(false, relyzer, path_depth);
    groupingOnly_ = false;
    return r;
}

PreparedCampaign
Campaign::prepare(bool inject_all, bool relyzer, unsigned path_depth,
                  bool grouping_only)
{
    obs::Span span("campaign", "prepare " + prog_.name);
    PreparedCampaign prep;
    CampaignResult &res = prep.result;
    Rng rng(cfg_.seed);
    faultsim::RunnerOptions ropts;
    ropts.checkpointInterval = cfg_.checkpointInterval;
    ropts.maxCheckpoints = cfg_.maxCheckpoints;
    ropts.earlyExit = cfg_.earlyExit;
    ropts.replay = cfg_.replay;
    ropts.timeoutFactor = cfg_.timeoutFactor;
    ropts.wallClockLimit = cfg_.injectWallLimit;
    ropts.quarantine = cfg_.quarantineFail
                           ? faultsim::QuarantinePolicy::Fail
                           : faultsim::QuarantinePolicy::Continue;
    ropts.injectHook = cfg_.injectHook;
    runner_ = std::make_unique<InjectionRunner>(prog_, cfg_.core, ropts);

    // ---- Phase 1: preprocessing (profiled golden run + fault list) ----
    const obs::TimePoint t0 = obs::now();
    profile::AceProfiler profiler(cfg_.core.numPhysIntRegs,
                                  cfg_.core.sqEntries,
                                  cfg_.core.l1d.totalWords());
    golden_ = runner_->golden(&profiler);
    profiler.finalize();
    res.profileSeconds = obs::secondsSince(t0);
    res.goldenCycles = golden_.stats.cycles;
    res.goldenInstret = golden_.stats.instret;

    const profile::StructureProfile &prof = profiler.profile(cfg_.target);
    res.aceAvf = prof.aceAvf(res.goldenCycles);

    const unsigned entries = entriesOf(cfg_.target, cfg_.core);
    std::vector<Fault> initial = sampleFaults(
        cfg_.target, entries, res.goldenCycles, cfg_.sampling, rng);
    res.initialFaults = initial.size();

    // ---- Phase 2: fault list reduction ----
    prep.grouping =
        relyzer ? relyzerGroupFaults(initial, prof, profiler, path_depth,
                                     rng)
                : groupFaults(initial, prof, cfg_.grouping, rng);
    const GroupingResult &grouping = prep.grouping;
    res.aceMasked = grouping.aceMasked;
    res.survivors = grouping.survivors.size();
    res.numGroups = grouping.groups.size();
    res.injections = grouping.numInjections();
    res.speedupAce =
        res.survivors
            ? static_cast<double>(res.initialFaults) /
                  static_cast<double>(res.survivors)
            : static_cast<double>(res.initialFaults);
    res.speedupTotal =
        res.injections
            ? static_cast<double>(res.initialFaults) /
                  static_cast<double>(res.injections)
            : static_cast<double>(res.initialFaults);

    prep.injectAll = inject_all;
    prep.groupingOnly = grouping_only;
    if (grouping_only)
        return prep;

    // Phase-3 work list: representatives first, then (for ground truth)
    // every survivor.  Representatives reappear among the members; batch
    // dedup runs each distinct fault once and aliases the repeats.
    prep.faults.reserve(res.injections +
                        (inject_all ? grouping.survivors.size() : 0));
    for (const FaultGroup &g : grouping.groups)
        for (std::uint32_t rep : g.representatives)
            prep.faults.push_back(grouping.survivors[rep].fault);
    prep.numRepFaults = prep.faults.size();
    if (inject_all) {
        for (const FaultGroup &g : grouping.groups)
            for (std::uint32_t m : g.members)
                prep.faults.push_back(grouping.survivors[m].fault);
    }
    return prep;
}

CampaignResult
Campaign::finish(PreparedCampaign prep,
                 const std::vector<Outcome> &outcomes,
                 double injection_seconds) const
{
    obs::Span span("campaign", "finish " + prog_.name);
    CampaignResult res = std::move(prep.result);
    if (prep.groupingOnly)
        return res;
    MERLIN_ASSERT(outcomes.size() == prep.faults.size(),
                  "outcome count does not match the prepared faults");
    const GroupingResult &grouping = prep.grouping;

    std::size_t rep_at = 0;
    for (const FaultGroup &g : grouping.groups) {
        // Majority vote over the representatives (one, in the paper's
        // configuration, so the vote degenerates to its outcome).
        std::array<std::uint32_t, faultsim::NUM_OUTCOMES> votes{};
        for (std::size_t r = 0; r < g.representatives.size(); ++r)
            ++votes[static_cast<unsigned>(outcomes[rep_at++])];
        const Outcome rep_outcome = static_cast<Outcome>(
            std::max_element(votes.begin(), votes.end()) -
            votes.begin());
        res.merlinEstimate.add(rep_outcome, g.members.size());
        res.merlinSurvivorEstimate.add(rep_outcome, g.members.size());
    }
    // ACE-pruned faults are Masked by construction.
    res.merlinEstimate.add(Outcome::Masked, res.aceMasked);

    if (prep.injectAll) {
        // Ground truth from the member sweep (outcomes after the
        // representative prefix).
        ClassCounts truth;
        std::vector<std::vector<Outcome>> per_group;
        per_group.reserve(grouping.groups.size());
        res.groupModels.reserve(grouping.groups.size());
        std::size_t at = prep.numRepFaults;
        for (const FaultGroup &g : grouping.groups) {
            std::vector<Outcome> outs;
            outs.reserve(g.members.size());
            std::uint64_t non_masked = 0;
            for (std::size_t m = 0; m < g.members.size(); ++m) {
                const Outcome o = outcomes[at++];
                truth.add(o);
                outs.push_back(o);
                if (o != Outcome::Masked)
                    ++non_masked;
            }
            res.groupModels.push_back(GroupModel{
                g.members.size(),
                static_cast<double>(non_masked) / g.members.size()});
            per_group.push_back(std::move(outs));
        }
        res.survivorTruth = truth;
        res.homogeneity = computeHomogeneity(per_group);
    }

    // Early-exit and quarantine accounting from this campaign's runner
    // (counts are a pure function of the fault list, so they are as
    // deterministic as the outcomes themselves).
    const faultsim::InjectionStats is = runner_->injectionStats();
    res.injectionRuns = is.runs;
    res.earlyExits = is.earlyExits;
    res.replayMasked = is.replayMasked;
    res.replayHandoffs = is.replayHandoffs;
    res.replayCyclesSkipped = is.replayCyclesSkipped;
    res.replayHeadCycles = is.replayHeadCycles;
    res.quarantine = runner_->quarantineRecords();

    res.injectionSeconds = injection_seconds;
    res.secondsPerInjection =
        prep.faults.empty()
            ? 0.0
            : injection_seconds / static_cast<double>(prep.faults.size());
    return res;
}

CampaignResult
Campaign::runImpl(bool inject_all, bool relyzer, unsigned path_depth)
{
    PreparedCampaign prep =
        prepare(inject_all, relyzer, path_depth, groupingOnly_);
    if (prep.groupingOnly)
        return std::move(prep.result);

    // ---- Phase 3: injection campaign ----
    // One combined batch (representatives + ground-truth members);
    // planBatch's duplicate collapse makes representative runs reused
    // by the sweep and duplicate sampled faults cost one run only, so
    // no cross-batch memo is needed.
    const unsigned jobs =
        cfg_.jobs ? cfg_.jobs : base::ThreadPool::hardwareThreads();
    const obs::TimePoint t0 = obs::now();
    const std::vector<Outcome> outcomes = [&] {
        obs::Span span("campaign", "inject-batch " + prog_.name);
        return runner_->injectBatch(prep.faults, golden_, jobs);
    }();
    return finish(std::move(prep), outcomes, obs::secondsSince(t0));
}

} // namespace merlin::core
