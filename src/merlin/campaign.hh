/**
 * @file
 * Campaign orchestration: the complete MeRLiN flow of Figure 2.
 *
 *   Preprocessing        golden run with the ACE-like profiler attached,
 *                        then statistical fault-list creation;
 *   Fault List Reduction ACE-like prune + two-step grouping;
 *   Injection Campaign   inject the reduced list, classify against the
 *                        golden run, extrapolate group outcomes.
 *
 * The same object can also run the baselines the paper compares against:
 * the full post-ACE fault list (for accuracy/homogeneity figures) and
 * Relyzer's control-equivalence heuristic (Figure 17).
 */

#ifndef MERLIN_MERLIN_CAMPAIGN_HH
#define MERLIN_MERLIN_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faultsim/runner.hh"
#include "merlin/grouping.hh"
#include "merlin/report.hh"
#include "merlin/theory.hh"
#include "merlin/sampling.hh"
#include "profile/ace.hh"
#include "uarch/config.hh"

namespace merlin::core
{

/** Everything a campaign needs besides the program. */
struct CampaignConfig
{
    uarch::Structure target = uarch::Structure::RegisterFile;
    uarch::CoreConfig core;
    SamplingSpec sampling;
    GroupingOptions grouping;
    std::uint64_t seed = 1;

    /**
     * Worker threads for the injection campaign (0 = hardware
     * concurrency).  Results are bit-identical for any value.
     */
    unsigned jobs = 1;
    /** Golden-run checkpoint cadence in cycles (0 = disabled). */
    Cycle checkpointInterval =
        faultsim::InjectionRunner::kDefaultCheckpointInterval;
    /** Bound on retained checkpoints (the cadence doubles past it). */
    unsigned maxCheckpoints =
        faultsim::InjectionRunner::kDefaultMaxCheckpoints;
    /**
     * End faulty runs at the first golden checkpoint whose state they
     * provably reconverged with (classification-preserving; off only
     * for A/B validation).
     */
    bool earlyExit = true;
    /**
     * Golden-trace replay fast path: skip each injection's
     * pre-divergence head off the recorded effect trace
     * (classification-preserving; off only for A/B validation).
     */
    bool replay = true;
    /** Timeout budget multiplier (the paper's rule is 3x golden). */
    unsigned timeoutFactor =
        faultsim::RunnerOptions::kDefaultTimeoutFactor;
    /**
     * Real-wall-clock watchdog per faulty run in seconds (0 = off);
     * see RunnerOptions::wallClockLimit.  A trip quarantines the
     * injection instead of hanging the campaign.
     */
    double injectWallLimit = 0.0;
    /** Abort the campaign on the first quarantined injection. */
    bool quarantineFail = false;
    /** TEST-ONLY per-cycle hook; see RunnerOptions::injectHook. */
    std::function<void(const faultsim::Fault &, Cycle)> injectHook;
};

/** Outcome of one campaign. */
struct CampaignResult
{
    // Golden-run facts.
    Cycle goldenCycles = 0;
    std::uint64_t goldenInstret = 0;
    double aceAvf = 0.0; ///< ACE-like AVF (upper bound on injection AVF)

    // Fault-list accounting.
    std::uint64_t initialFaults = 0;
    std::uint64_t aceMasked = 0;   ///< pruned by the ACE-like step
    std::uint64_t survivors = 0;   ///< faults in vulnerable intervals
    std::uint64_t numGroups = 0;
    std::uint64_t injections = 0;  ///< representatives actually injected

    // MeRLiN's estimate, extrapolated to the full initial list
    // (ACE-pruned faults counted Masked).
    ClassCounts merlinEstimate;
    // Same estimate restricted to the post-ACE survivors.
    ClassCounts merlinSurvivorEstimate;

    // Ground truth over survivors (only when injectAll was requested).
    std::optional<ClassCounts> survivorTruth;
    std::optional<HomogeneityReport> homogeneity;
    /** Per-group sizes and non-masking rates (Section 4.4.5 model). */
    std::vector<GroupModel> groupModels;

    // Speedups exactly as the paper reports them (fault-count ratios;
    // one injection run costs the same with or without MeRLiN).
    double speedupAce = 0.0;   ///< initial / survivors
    double speedupTotal = 0.0; ///< initial / injections

    // Early-exit accounting (faulty runs that provably reconverged
    // with the golden state and were cut short).
    std::uint64_t injectionRuns = 0; ///< distinct faulty runs simulated
    std::uint64_t earlyExits = 0;    ///< of which ended at a checkpoint

    // Replay-fast-path accounting (golden-trace consults).
    std::uint64_t replayMasked = 0;   ///< proved dead, zero simulation
    std::uint64_t replayHandoffs = 0; ///< diverged into full simulation
    std::uint64_t replayCyclesSkipped = 0; ///< full-sim cycles avoided
    std::uint64_t replayHeadCycles = 0;    ///< pre-divergence head total

    /**
     * Injections the quarantine guard caught (escaped simulator
     * exceptions, wall-clock-watchdog trips), sorted by (fault key,
     * reason).  Each counted Crash in the class distributions; the
     * campaign completed despite them.  Empty in the common case.
     */
    std::vector<faultsim::QuarantineRecord> quarantine;

    // Wall-clock facts for Figure 11 / Table 3.
    double profileSeconds = 0.0;     ///< golden + profiling run
    double injectionSeconds = 0.0;   ///< total time injecting reps
    double secondsPerInjection = 0.0;

    /** Fraction of simulated runs cut short by early exit. */
    double
    earlyExitRate() const
    {
        return injectionRuns ? static_cast<double>(earlyExits) /
                                   static_cast<double>(injectionRuns)
                             : 0.0;
    }

    /** Fraction of replay-consulted runs that diverged into full sim. */
    double
    replayDivergenceRate() const
    {
        const std::uint64_t consulted = replayMasked + replayHandoffs;
        return consulted ? static_cast<double>(replayHandoffs) /
                               static_cast<double>(consulted)
                         : 0.0;
    }

    /** Fraction of the total pre-divergence head replay skipped. */
    double
    replaySkipRate() const
    {
        return replayHeadCycles
                   ? static_cast<double>(replayCyclesSkipped) /
                         static_cast<double>(replayHeadCycles)
                   : 0.0;
    }

    /** Truth over the full initial list (survivorTruth + ACE Masked). */
    ClassCounts fullTruth() const;

    /** FIT rate from MeRLiN's estimate. */
    double merlinFit(std::uint64_t bits,
                     double raw_fit_per_bit = 0.01) const;
};

/**
 * A campaign paused between its phases: profiling/grouping done
 * (phases 1-2), injections (phase 3) not yet run.  Produced by
 * Campaign::prepare(); hand `faults` to any injection driver — the
 * in-process injectBatch, or the suite scheduler's shared pool — then
 * fold the outcomes back with Campaign::finish().
 */
struct PreparedCampaign
{
    /** Phase 1-2 fields filled; phase 3 fields still empty. */
    CampaignResult result;
    GroupingResult grouping;
    /**
     * All faults phase 3 must inject: the group representatives first
     * (numRepFaults of them), then — when ground truth was requested —
     * every survivor.  Duplicates are expected; batch dedup collapses
     * them.  Empty for grouping-only campaigns.
     */
    std::vector<faultsim::Fault> faults;
    std::size_t numRepFaults = 0;
    bool injectAll = false;
    bool groupingOnly = false;
};

/**
 * One section's slice of a sectioned campaign: the golden run is cut
 * into `sections` equal cycle intervals, every fault group is
 * attributed to the section containing its representative's injection
 * cycle, and this struct carries everything the section contributed to
 * the campaign — the survivor-restricted extrapolated outcome counts
 * plus the per-run engine counters and quarantine records.  A complete
 * table of these (one per section) composes back into the exact
 * CampaignResult a cold full run produces, which is what lets the
 * result store serve *partial* hits: only missing sections' faults are
 * re-injected.
 */
struct SectionData
{
    /** Extrapolated outcome counts over this section's groups
     *  (survivor-restricted; ACE-masked faults are added once at
     *  composition, not per section). */
    ClassCounts estimate;
    std::uint64_t injectionRuns = 0;
    std::uint64_t earlyExits = 0;
    std::uint64_t replayMasked = 0;
    std::uint64_t replayHandoffs = 0;
    std::uint64_t replayCyclesSkipped = 0;
    std::uint64_t replayHeadCycles = 0;
    /** Sorted by (fault key, reason), like CampaignResult::quarantine. */
    std::vector<faultsim::QuarantineRecord> quarantine;

    /** Fold one completed injection run's engine facts in (not the
     *  outcome — estimates extrapolate per group, not per run). */
    void addRun(std::uint64_t fault_key,
                const faultsim::InjectDetail &detail);
};

/**
 * Section containing @p cycle when [0, golden_cycles) is cut into
 * @p sections equal cycle intervals (the remainder widens the last
 * section, and a cycle at/past golden_cycles clamps into it).
 */
unsigned sectionOfCycle(Cycle cycle, Cycle golden_cycles,
                        unsigned sections);

/**
 * Can @p prep be run and cached section-by-section?  Requires a plain
 * estimate campaign (no ground-truth sweep, no grouping-only) whose
 * groups carry exactly one representative each: then prep.faults[g]
 * IS group g's representative, every group is attributed to the
 * section of that one injection cycle, and batch deduplication stays
 * section-local (duplicate faults share a cycle, hence a section) —
 * the properties that make per-section run accounting sum exactly to
 * a cold run's totals.
 */
bool sectionable(const PreparedCampaign &prep);

/**
 * Section index of every fault group of @p prep (prep must be
 * sectionable()): group g lands in the section containing its
 * representative's injection cycle.
 */
std::vector<unsigned> groupSections(const PreparedCampaign &prep,
                                    unsigned sections);

/**
 * Compose a CampaignResult from a COMPLETE per-section table (stored
 * hits and freshly-run sections alike) — the sectioned counterpart of
 * Campaign::finish().  Sums the survivor-restricted estimates, adds
 * the ACE-masked faults once, sums the engine counters, and
 * concatenates + sorts the quarantine records; each section's own
 * quarantine list is also sorted in place so @p table serializes
 * deterministically.  Byte-identical to a cold full run's result by
 * construction (integer sums commute; every per-run fact is a pure
 * function of its fault).  @p fresh_faults is the number of faults
 * this process actually handed to the injection engine (the
 * seconds-per-injection denominator).
 */
CampaignResult composeSectioned(PreparedCampaign prep,
                                std::vector<SectionData> &table,
                                double injection_seconds,
                                std::size_t fresh_faults);

/** Drives one (program, structure, configuration) campaign. */
class Campaign
{
  public:
    Campaign(const isa::Program &prog, const CampaignConfig &cfg);

    /**
     * Run the full MeRLiN flow.
     *
     * @param inject_all_survivors also inject every post-ACE fault to
     *        obtain ground truth (expensive; used by the accuracy and
     *        homogeneity experiments).
     */
    CampaignResult run(bool inject_all_survivors = false);

    /**
     * Run with Relyzer's control-equivalence heuristic instead of
     * MeRLiN's step 2 (Section 4.4.4 comparison).
     */
    CampaignResult runRelyzer(bool inject_all_survivors = false,
                              unsigned path_depth = 5);

    /**
     * Profile + prune + group but skip all injections: sufficient for
     * the speedup figures (8-13), which only need fault-list reduction
     * ratios.  Class distributions in the result are empty.
     */
    CampaignResult runGroupingOnly(bool relyzer = false,
                                   unsigned path_depth = 5);

    /**
     * Phases 1-2 only: profiled golden run, fault sampling, ACE prune +
     * grouping.  Afterwards goldenRun()/runner() are valid and the
     * returned faults can be injected by an external driver; fold the
     * outcomes back with finish().  run()/runRelyzer()/runGroupingOnly()
     * are thin wrappers over this split.
     */
    PreparedCampaign prepare(bool inject_all = false, bool relyzer = false,
                             unsigned path_depth = 5,
                             bool grouping_only = false);

    /**
     * Phase 3 epilogue: @p outcomes must hold the outcome of
     * prep.faults[i] at index i (any injection driver; outcomes are a
     * pure function of the fault, so any schedule gives the same
     * result).  @p injection_seconds is the caller-measured wall clock
     * of the injection phase.
     */
    CampaignResult finish(PreparedCampaign prep,
                          const std::vector<faultsim::Outcome> &outcomes,
                          double injection_seconds = 0.0) const;

    /** The golden reference (valid after prepare()/run()/...). */
    const faultsim::GoldenRun &goldenRun() const { return golden_; }

    /** The injection harness (valid after prepare()/run()/...). */
    const faultsim::InjectionRunner &
    runner() const
    {
        MERLIN_ASSERT(runner_ != nullptr, "campaign not prepared");
        return *runner_;
    }

  private:
    CampaignResult runImpl(bool inject_all, bool relyzer,
                           unsigned path_depth);

    const isa::Program &prog_;
    CampaignConfig cfg_;
    faultsim::GoldenRun golden_;
    std::unique_ptr<faultsim::InjectionRunner> runner_;
    bool groupingOnly_ = false;
};

} // namespace merlin::core

#endif // MERLIN_MERLIN_CAMPAIGN_HH
