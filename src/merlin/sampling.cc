#include "merlin/sampling.hh"

#include "base/logging.hh"
#include "base/statistics.hh"

namespace merlin::core
{

std::uint64_t
SamplingSpec::count(double population) const
{
    if (fixedCount)
        return std::min<std::uint64_t>(
            *fixedCount, static_cast<std::uint64_t>(population));
    return stats::sampleSize(population, errorMargin, confidence);
}

SamplingSpec
spec60k()
{
    return SamplingSpec{0.998, 0.0063, std::nullopt};
}

SamplingSpec
spec600k()
{
    return SamplingSpec{0.998, 0.0019, std::nullopt};
}

SamplingSpec
specFixed(std::uint64_t n)
{
    SamplingSpec s;
    s.fixedCount = n;
    return s;
}

std::vector<faultsim::Fault>
sampleFaults(uarch::Structure structure, unsigned num_entries,
             Cycle total_cycles, const SamplingSpec &spec, Rng &rng)
{
    MERLIN_ASSERT(num_entries > 0 && total_cycles > 0,
                  "empty fault population");
    const double population = static_cast<double>(num_entries) * 64.0 *
                              static_cast<double>(total_cycles);
    const std::uint64_t n = spec.count(population);

    std::vector<faultsim::Fault> list;
    list.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        faultsim::Fault f;
        f.structure = structure;
        f.entry = static_cast<EntryIndex>(rng.nextBelow(num_entries));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        f.cycle = rng.nextBelow(total_cycles);
        list.push_back(f);
    }
    return list;
}

} // namespace merlin::core
