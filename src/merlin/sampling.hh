/**
 * @file
 * Statistical fault sampling (Section 3.1.2, after Leveugle et al. [26]).
 *
 * The exhaustive fault population of a structure is bits x cycles.  A
 * campaign draws a uniform random sample whose size follows from the
 * requested confidence level and error margin; the paper's baselines are
 * 60,000 faults (99.8% confidence, 0.63% margin) and 600,000 faults
 * (99.8%, 0.19%).
 */

#ifndef MERLIN_MERLIN_SAMPLING_HH
#define MERLIN_MERLIN_SAMPLING_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/rng.hh"
#include "faultsim/fault.hh"

namespace merlin::core
{

/** How many faults to draw. */
struct SamplingSpec
{
    double confidence = 0.998;
    double errorMargin = 0.0063;
    /** When set, overrides the formula (used for scaled-down benches). */
    std::optional<std::uint64_t> fixedCount;

    /** Sample size for a population of @p population faults. */
    std::uint64_t count(double population) const;
};

/** The paper's named campaign sizes. */
SamplingSpec spec60k();  ///< 99.8% confidence, 0.63% margin (~60,000)
SamplingSpec spec600k(); ///< 99.8% confidence, 0.19% margin (~600,000)
SamplingSpec specFixed(std::uint64_t n);

/**
 * Draw the initial fault list for @p structure: uniform i.i.d. over
 * entries x 64 bits x [0, total_cycles) flip cycles.
 */
std::vector<faultsim::Fault>
sampleFaults(uarch::Structure structure, unsigned num_entries,
             Cycle total_cycles, const SamplingSpec &spec, Rng &rng);

} // namespace merlin::core

#endif // MERLIN_MERLIN_SAMPLING_HH
