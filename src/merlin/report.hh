/**
 * @file
 * Campaign result aggregation: outcome distributions, AVF, FIT,
 * homogeneity (Section 4.4.1), and comparison helpers.
 */

#ifndef MERLIN_MERLIN_REPORT_HH
#define MERLIN_MERLIN_REPORT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "faultsim/fault.hh"

namespace merlin::core
{

/** Histogram over the Table-2 outcome classes. */
struct ClassCounts
{
    std::array<std::uint64_t, faultsim::NUM_OUTCOMES> counts{};

    void
    add(faultsim::Outcome o, std::uint64_t n = 1)
    {
        counts[static_cast<unsigned>(o)] += n;
    }

    std::uint64_t
    of(faultsim::Outcome o) const
    {
        return counts[static_cast<unsigned>(o)];
    }

    std::uint64_t total() const;

    /** Fraction of the given class (0 when empty). */
    double fraction(faultsim::Outcome o) const;

    /** AVF = non-masked fraction (Unknown counts as non-masked). */
    double avf() const;

    ClassCounts operator+(const ClassCounts &o) const;

    /**
     * Largest per-class |difference| in percentile units against
     * another distribution (the paper's Figure 17 inaccuracy metric).
     */
    double maxInaccuracyVs(const ClassCounts &o) const;

    /** Per-class inaccuracy in percentile units. */
    std::array<double, faultsim::NUM_OUTCOMES>
    inaccuracyVs(const ClassCounts &o) const;
};

/**
 * FIT rate of a structure: AVF x raw FIT/bit x #bits (Section 4.4.3.3;
 * the paper uses 0.01 FIT per bit).
 */
double fitRate(double avf, std::uint64_t bits,
               double raw_fit_per_bit = 0.01);

/** Homogeneity metrics over fully-injected groups (equation (1)). */
struct HomogeneityReport
{
    double fine = 0.0;        ///< 6-class dominant-share average
    double coarse = 0.0;      ///< masked vs non-masked collapse
    double perfectFraction = 0.0; ///< groups with coarse homogeneity 1.0
    std::uint64_t groups = 0;
    std::uint64_t faults = 0;
    double avgGroupSize = 0.0;
};

/**
 * Compute homogeneity given the true outcome of every member of every
 * group.  @p outcomes_per_group holds, for each group, the outcome of
 * each member fault.
 */
HomogeneityReport
computeHomogeneity(const std::vector<std::vector<faultsim::Outcome>>
                       &outcomes_per_group);

} // namespace merlin::core

#endif // MERLIN_MERLIN_REPORT_HH
