#include "merlin/grouping.hh"

#include <algorithm>
#include <map>
#include <tuple>

#include "base/logging.hh"

namespace merlin::core
{

namespace
{

/** Tag faults with interval info; fills `survivors` / counts pruned. */
GroupingResult
pruneByAce(const std::vector<faultsim::Fault> &faults,
           const profile::StructureProfile &profile)
{
    GroupingResult res;
    res.survivors.reserve(faults.size() / 4);
    for (const auto &f : faults) {
        const profile::VulnerableInterval *iv =
            profile.find(f.entry, f.cycle);
        if (!iv) {
            ++res.aceMasked;
            continue;
        }
        TaggedFault tf;
        tf.fault = f;
        tf.rip = iv->rip;
        tf.upc = iv->upc;
        tf.endSeq = iv->endSeq;
        tf.intervalStart = iv->start;
        res.survivors.push_back(tf);
    }
    return res;
}

} // namespace

GroupingResult
groupFaults(const std::vector<faultsim::Fault> &faults,
            const profile::StructureProfile &profile,
            const GroupingOptions &opts, Rng &rng)
{
    GroupingResult res = pruneByAce(faults, profile);

    // Step 1 + byte part of step 2 as a composite key.
    using Key = std::tuple<Rip, Upc, std::uint8_t>;
    std::map<Key, std::vector<std::uint32_t>> buckets;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(res.survivors.size()); ++i) {
        const TaggedFault &tf = res.survivors[i];
        std::uint8_t sub = 255;
        switch (opts.split) {
          case GroupingOptions::Split::None:
            sub = 255;
            break;
          case GroupingOptions::Split::Byte:
            sub = tf.fault.bit / 8;
            break;
          case GroupingOptions::Split::Nibble:
            sub = tf.fault.bit / 4;
            break;
          case GroupingOptions::Split::Bit:
            sub = tf.fault.bit;
            break;
        }
        buckets[Key{tf.rip, tf.upc, sub}].push_back(i);
    }

    // Step 2: split oversized subgroups round-robin across dynamic
    // instances so each final group (and its representative) spans
    // different dynamic occurrences of the same static instruction.
    const unsigned cap = std::max(1u, opts.maxGroupSize);
    for (auto &[key, members] : buckets) {
        std::sort(members.begin(), members.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      const TaggedFault &fa = res.survivors[a];
                      const TaggedFault &fb = res.survivors[b];
                      if (fa.intervalStart != fb.intervalStart)
                          return fa.intervalStart < fb.intervalStart;
                      if (fa.fault.entry != fb.fault.entry)
                          return fa.fault.entry < fb.fault.entry;
                      return fa.fault.cycle < fb.fault.cycle;
                  });
        const std::size_t n = members.size();
        const std::size_t num_chunks = (n + cap - 1) / cap;

        std::vector<FaultGroup> chunks(num_chunks);
        for (std::size_t c = 0; c < num_chunks; ++c) {
            chunks[c].rip = std::get<0>(key);
            chunks[c].upc = std::get<1>(key);
            chunks[c].byte = std::get<2>(key);
        }
        // Round-robin assignment over the time-sorted order.
        for (std::size_t i = 0; i < n; ++i)
            chunks[i % num_chunks].members.push_back(members[i]);

        const unsigned reps = std::max(1u, opts.repsPerGroup);
        for (auto &g : chunks) {
            // Sample representatives without replacement; the chunk is
            // time-interleaved, so a stride over it preserves dynamic
            // diversity.
            const std::size_t want =
                std::min<std::size_t>(reps, g.members.size());
            const std::size_t start = rng.nextBelow(g.members.size());
            const std::size_t stride =
                std::max<std::size_t>(1, g.members.size() / want);
            for (std::size_t r = 0; r < want; ++r) {
                g.representatives.push_back(
                    g.members[(start + r * stride) % g.members.size()]);
            }
            res.groups.push_back(std::move(g));
        }
    }
    return res;
}

GroupingResult
relyzerGroupFaults(const std::vector<faultsim::Fault> &faults,
                   const profile::StructureProfile &profile,
                   const profile::AceProfiler &profiler,
                   unsigned path_depth, Rng &rng)
{
    GroupingResult res = pruneByAce(faults, profile);

    // Control equivalence: (RIP, uPC, depth-limited control path of the
    // dynamic instance).  No byte split; one random pilot per group.
    using Key = std::tuple<Rip, Upc, std::uint64_t>;
    std::map<Key, std::vector<std::uint32_t>> buckets;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(res.survivors.size()); ++i) {
        const TaggedFault &tf = res.survivors[i];
        const std::uint64_t sig =
            profiler.pathSignature(tf.endSeq, path_depth);
        buckets[Key{tf.rip, tf.upc, sig}].push_back(i);
    }

    for (auto &[key, members] : buckets) {
        FaultGroup g;
        g.rip = std::get<0>(key);
        g.upc = std::get<1>(key);
        g.byte = 255;
        g.members = std::move(members);
        g.representatives.push_back(
            g.members[rng.nextBelow(g.members.size())]);
        res.groups.push_back(std::move(g));
    }
    return res;
}

} // namespace merlin::core
