/**
 * @file
 * Transient-fault descriptors and the paper's Table-2 outcome classes.
 */

#ifndef MERLIN_FAULTSIM_FAULT_HH
#define MERLIN_FAULTSIM_FAULT_HH

#include <cstddef>
#include <cstdint>

#include "base/logging.hh"
#include "base/types.hh"
#include "uarch/probe.hh"

namespace merlin::faultsim
{

/** One transient fault: a single bit flip at a single cycle. */
struct Fault
{
    uarch::Structure structure = uarch::Structure::RegisterFile;
    EntryIndex entry = 0;  ///< register index / SQ slot / L1D word
    std::uint8_t bit = 0;  ///< bit position within the 64-bit entry
    Cycle cycle = 0;       ///< flip applied at the start of this cycle

    /** Byte position inside the entry (MeRLiN's 2nd grouping step). */
    std::uint8_t
    byte() const
    {
        return bit / 8;
    }

    bool
    operator==(const Fault &o) const
    {
        return structure == o.structure && entry == o.entry &&
               bit == o.bit && cycle == o.cycle;
    }
};

/**
 * Lossless 64-bit packing of a fault within one campaign (the target
 * structure is fixed per campaign, so it is not part of the key):
 * cycle in bits [0,40), entry in [40,58), bit position in [58,64).
 * 18 entry bits cover L1D data arrays up to 2 MB (2^18 8-byte words).
 */
inline std::uint64_t
faultKey(const Fault &f)
{
    MERLIN_ASSERT(f.cycle < (1ULL << 40) && f.entry < (1u << 18) &&
                      f.bit < 64,
                  "fault key overflow");
    return f.cycle | (static_cast<std::uint64_t>(f.entry) << 40) |
           (static_cast<std::uint64_t>(f.bit) << 58);
}

/** Injection cycle recovered from a faultKey() packing. */
inline Cycle
faultKeyCycle(std::uint64_t key)
{
    return key & ((1ULL << 40) - 1);
}

/**
 * Identity hash for already-packed fault keys: the low bits are the
 * fault cycle, which is as good a bucket index as any mixed hash, and
 * skipping the mix keeps the memo lookup off the campaign profile.
 */
struct FaultKeyHash
{
    std::size_t
    operator()(std::uint64_t k) const noexcept
    {
        return static_cast<std::size_t>(k);
    }
};

/**
 * Fault-effect classification (Table 2).  Unknown is used only for
 * SimPoint-window campaigns terminated at the window boundary (Table 4).
 */
enum class Outcome : std::uint8_t
{
    Masked = 0,
    SDC,
    DUE,
    Timeout,
    Crash,
    Assert,
    Unknown,
    NUM_OUTCOMES
};

constexpr unsigned NUM_OUTCOMES =
    static_cast<unsigned>(Outcome::NUM_OUTCOMES);

const char *outcomeName(Outcome o);

} // namespace merlin::faultsim

#endif // MERLIN_FAULTSIM_FAULT_HH
