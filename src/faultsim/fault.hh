/**
 * @file
 * Transient-fault descriptors and the paper's Table-2 outcome classes.
 */

#ifndef MERLIN_FAULTSIM_FAULT_HH
#define MERLIN_FAULTSIM_FAULT_HH

#include <cstdint>

#include "base/types.hh"
#include "uarch/probe.hh"

namespace merlin::faultsim
{

/** One transient fault: a single bit flip at a single cycle. */
struct Fault
{
    uarch::Structure structure = uarch::Structure::RegisterFile;
    EntryIndex entry = 0;  ///< register index / SQ slot / L1D word
    std::uint8_t bit = 0;  ///< bit position within the 64-bit entry
    Cycle cycle = 0;       ///< flip applied at the start of this cycle

    /** Byte position inside the entry (MeRLiN's 2nd grouping step). */
    std::uint8_t
    byte() const
    {
        return bit / 8;
    }

    bool
    operator==(const Fault &o) const
    {
        return structure == o.structure && entry == o.entry &&
               bit == o.bit && cycle == o.cycle;
    }
};

/**
 * Fault-effect classification (Table 2).  Unknown is used only for
 * SimPoint-window campaigns terminated at the window boundary (Table 4).
 */
enum class Outcome : std::uint8_t
{
    Masked = 0,
    SDC,
    DUE,
    Timeout,
    Crash,
    Assert,
    Unknown,
    NUM_OUTCOMES
};

constexpr unsigned NUM_OUTCOMES =
    static_cast<unsigned>(Outcome::NUM_OUTCOMES);

const char *outcomeName(Outcome o);

} // namespace merlin::faultsim

#endif // MERLIN_FAULTSIM_FAULT_HH
