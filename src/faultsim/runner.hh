/**
 * @file
 * Injection harness: golden-run capture, single-fault runs, and the
 * outcome classifier.
 *
 * Classification (priority order, Table 2 + DESIGN.md):
 *   Assert  - a simulator invariant tripped (SimAssertError)
 *   Crash   - crash-family trap committed (segfault, misalignment,
 *             illegal instruction, fetch out of text) or the simulator
 *             process itself failed
 *   Timeout - run exceeded 3x the golden cycles, or commit stopped
 *             making progress (deadlock/livelock watchdog)
 *   DUE     - exception-family trap (div-zero, software-detected error):
 *             the fault was detected before silent corruption
 *   SDC     - terminated normally but output or exit code differ
 *   Masked  - architecturally identical to the golden run
 *
 * For window-truncated (SimPoint-style) runs, a fault that is still
 * latent at the window end — different architectural register or memory
 * state — is Unknown (Table 4).
 */

#ifndef MERLIN_FAULTSIM_RUNNER_HH
#define MERLIN_FAULTSIM_RUNNER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "faultsim/fault.hh"
#include "isa/interp.hh"
#include "isa/program.hh"
#include "uarch/core.hh"

namespace merlin::faultsim
{

/** Reference data captured from the fault-free run. */
struct GoldenRun
{
    isa::ArchResult arch;
    uarch::CoreStats stats;
    bool windowed = false;
    /** Committed architectural registers at the window end. */
    std::array<std::uint64_t, isa::NUM_ARCH_REGS> archRegs{};
    /** Architectural memory view at the window end. */
    std::shared_ptr<const isa::SegmentedMemory> archMem;
};

/** Runs golden and faulty executions of one program/configuration. */
class InjectionRunner
{
  public:
    InjectionRunner(const isa::Program &prog,
                    const uarch::CoreConfig &cfg);

    /**
     * Execute the fault-free run (optionally with a profiler probe
     * attached) and capture the reference outcome.
     */
    GoldenRun golden(uarch::Probe *probe = nullptr) const;

    /** Inject @p fault, run to termination, classify against @p ref. */
    Outcome inject(const Fault &fault, const GoldenRun &ref) const;

    /** Classify a completed faulty run (exposed for testing). */
    static Outcome classify(const isa::ArchResult &faulty,
                            const uarch::Core &core, const GoldenRun &ref);

    const uarch::CoreConfig &config() const { return cfg_; }

  private:
    const isa::Program &prog_;
    uarch::CoreConfig cfg_;
};

} // namespace merlin::faultsim

#endif // MERLIN_FAULTSIM_RUNNER_HH
