/**
 * @file
 * Injection harness: golden-run capture (with periodic state
 * checkpoints), single-fault runs, the deterministic multi-threaded
 * batch API, and the outcome classifier.
 *
 * Classification (priority order, Table 2 + DESIGN.md):
 *   Assert  - a simulator invariant tripped (SimAssertError)
 *   Crash   - crash-family trap committed (segfault, misalignment,
 *             illegal instruction, fetch out of text) or the simulator
 *             process itself failed
 *   Timeout - run exceeded 3x the golden cycles, or commit stopped
 *             making progress (deadlock/livelock watchdog)
 *   DUE     - exception-family trap (div-zero, software-detected error):
 *             the fault was detected before silent corruption
 *   SDC     - terminated normally but output or exit code differ
 *   Masked  - architecturally identical to the golden run
 *
 * For window-truncated (SimPoint-style) runs, a fault that is still
 * latent at the window end — different architectural register or memory
 * state — is Unknown (Table 4).
 *
 * Acceleration: the golden run records full core snapshots every
 * `checkpoint_interval` cycles (the list is thinned and the interval
 * doubled whenever it would exceed `max_checkpoints`, so memory stays
 * bounded on long workloads).  Each injection then resumes from the
 * latest checkpoint at or before the flip cycle instead of re-simulating
 * from cycle 0 — on average that skips half the pre-fault execution.
 * Snapshots are copy-on-write (O(dirty state) to capture), so the
 * default checkpoint grid is much denser than the seed engine's.
 *
 * Early exit: after the flip, whenever the injected core reaches a
 * golden checkpoint cycle its state is compared against that snapshot
 * (chunk-pointer identity first, bytes only for detached chunks).  A
 * full match proves the faulty run has reconverged with the golden
 * run: identical state at cycle c implies an identical future, so the
 * run is terminated immediately with the golden outcome (Masked) —
 * classifications are unchanged by construction, only the post-mask
 * tail simulation is skipped.
 *
 * Replay fast path: the golden run additionally records a per-cycle
 * effect trace (replay/trace.hh).  Each injection first consults the
 * trace for the flip's first architectural consequence: a flip that is
 * overwritten before any read (or never touched at all) is Masked with
 * zero simulation, and a flip first read at cycle D resumes full
 * simulation from the latest checkpoint in [flip, D] with the flip
 * applied at restore — the pre-divergence head between the classic
 * resume point and that checkpoint is never simulated.  Early exit
 * then still trims the tail, compressing the simulated window to
 * roughly [divergence, reconvergence).
 */

#ifndef MERLIN_FAULTSIM_RUNNER_HH
#define MERLIN_FAULTSIM_RUNNER_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "faultsim/fault.hh"
#include "isa/interp.hh"
#include "isa/program.hh"
#include "replay/trace.hh"
#include "uarch/core.hh"

namespace merlin::base
{
class TaskGroup;
}

namespace merlin::faultsim
{

/** Reference data captured from the fault-free run. */
struct GoldenRun
{
    isa::ArchResult arch;
    uarch::CoreStats stats;
    bool windowed = false;
    /** Committed architectural registers at the window end. */
    std::array<std::uint64_t, isa::NUM_ARCH_REGS> archRegs{};
    /** Architectural memory view at the window end. */
    std::shared_ptr<const isa::SegmentedMemory> archMem;
    /** Periodic core checkpoints, ascending by cycle (possibly empty). */
    std::vector<uarch::Core::Snapshot> checkpoints;
    /**
     * Per-cycle effect trace of the golden run (replay fast path);
     * null when RunnerOptions::replay is off or an injectHook is set.
     */
    std::shared_ptr<const replay::EffectTrace> trace;
};

/**
 * Concurrency-safe per-fault outcome cache keyed by faultKey().
 * Sharded by the low key bits (the fault cycle) so a cycle-sorted batch
 * spreads its insertions across shards; each shard's table is reserved
 * up front to avoid rehash churn in the injection hot loop.
 */
class OutcomeMemo
{
  public:
    explicit OutcomeMemo(std::size_t expected_faults = 0);

    /** @return true and set @p out if @p key is present. */
    bool lookup(std::uint64_t key, Outcome &out) const;

    void insert(std::uint64_t key, Outcome o);

    std::size_t size() const;

  private:
    static constexpr unsigned kShards = 16;

    static unsigned
    shardOf(std::uint64_t key)
    {
        return static_cast<unsigned>(key & (kShards - 1));
    }

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::uint64_t, Outcome, FaultKeyHash> map;
    };
    std::array<Shard, kShards> shards_;
};

/**
 * Deterministic execution plan for one batch of faults: memo hits
 * resolved, duplicates collapsed onto their first occurrence, fresh
 * work cycle-sorted for checkpoint locality.  Produced by
 * InjectionRunner::planBatch(); the work items may then be executed by
 * any thread in any order (each outcome is a pure function of its
 * fault), and finishBatch() publishes memo entries and fills the
 * duplicate slots.  This is the hook the suite scheduler uses to feed
 * many campaigns' injections into one shared pool.
 */
struct BatchPlan
{
    /** One slot per input fault, in input order. */
    std::vector<Outcome> outcomes;
    /** faultKey() of every input fault. */
    std::vector<std::uint64_t> keys;
    /** Indices that must actually run, sorted by flip cycle. */
    std::vector<std::uint32_t> work;
    /** Duplicate slots: first = destination, second = source index. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> aliases;
};

/**
 * One quarantined injection: a fault whose run did not merely
 * misbehave architecturally (that is what the Table-2 classes are
 * for) but corrupted or wedged the simulator itself — an escaped
 * exception or a tripped real-wall-clock watchdog.  The record is
 * deterministic (packed fault key + a reproducible reason string), so
 * a campaign that hits one still produces byte-stable results and the
 * offending fault can be replayed in isolation.
 */
struct QuarantineRecord
{
    std::uint64_t faultKey = 0; ///< faultKey() packing of the fault
    std::string reason;         ///< deterministic, human-readable cause

    bool
    operator==(const QuarantineRecord &o) const
    {
        return faultKey == o.faultKey && reason == o.reason;
    }
};

/** How the replay fast path resolved one injection. */
enum class ReplayAction : std::uint8_t
{
    None = 0,    ///< replay off / no trace: classic full simulation
    Masked = 1,  ///< trace proved the flip dead; no simulation at all
    Handoff = 2, ///< diverged (or windowed tail): full sim from the
                 ///< latest pre-divergence checkpoint
};

/** Per-injection facts beyond the Outcome (for journals/quarantine). */
struct InjectDetail
{
    bool earlyExit = false;   ///< ended at a reconverged checkpoint
    bool quarantined = false; ///< guarded failure, outcome forced Crash
    std::string reason;       ///< quarantine reason when quarantined
    ReplayAction replay = ReplayAction::None;
    /** Full-simulation cycles the replay fast path avoided. */
    Cycle replayCyclesSkipped = 0;
    /** Pre-divergence head length (classic resume to first effect). */
    Cycle replayHeadCycles = 0;
};

/** What to do when an injection trips the quarantine guard. */
enum class QuarantinePolicy : std::uint8_t
{
    Continue, ///< record the fault, count it Crash, keep campaigning
    Fail,     ///< abort the campaign (FatalError) on first quarantine
};

/** Policy knobs of the injection harness. */
struct RunnerOptions
{
    /** Default checkpoint cadence (cycles); 0 disables checkpointing. */
    static constexpr Cycle kDefaultCheckpointInterval = 512;
    /**
     * Checkpoint-count bound; the interval doubles past it.  COW
     * snapshots cost O(dirty state), so the same memory budget now
     * affords a 4x denser grid than the seed engine's 32.
     */
    static constexpr unsigned kDefaultMaxCheckpoints = 128;
    /** The paper's timeout rule: this many times the golden cycles. */
    static constexpr unsigned kDefaultTimeoutFactor = 3;

    Cycle checkpointInterval = kDefaultCheckpointInterval;
    unsigned maxCheckpoints = kDefaultMaxCheckpoints;
    /** Terminate runs that provably reconverged with the golden run. */
    bool earlyExit = true;
    /**
     * Golden-trace replay fast path: record the golden run's effect
     * trace and let each injection skip its pre-divergence head
     * (consult the trace, classify dead flips Masked outright, resume
     * live ones from the latest pre-divergence checkpoint).  Outcome-
     * invariant by construction; like earlyExit it is a provenance
     * knob, not a result knob.  Automatically disabled while an
     * injectHook is set — the hook observes every simulated cycle, so
     * skipping cycles would change what tests see.
     */
    bool replay = true;
    /** Timeout budget multiplier (0 is treated as 1). */
    unsigned timeoutFactor = kDefaultTimeoutFactor;
    /**
     * Real-wall-clock watchdog per faulty run, in seconds (0 = off).
     * Distinct from the SIMULATED timeoutFactor budget: this one
     * catches a fault that wedges the simulator itself (a livelock
     * that keeps ticking without the cycle budget ever firing).  The
     * check runs every few hundred simulated cycles, so it cannot
     * interrupt a hang inside one tick — it is an operational guard,
     * not a preemption mechanism.  A watchdog trip quarantines the
     * injection; because it depends on host speed, leave it off when
     * byte-reproducibility across machines matters more than liveness.
     */
    double wallClockLimit = 0.0;
    /** Quarantine-guard policy (see QuarantinePolicy). */
    QuarantinePolicy quarantine = QuarantinePolicy::Continue;
    /**
     * TEST-ONLY hook, invoked once per simulated cycle after the flip
     * has been applied.  Lets tests model a pathological fault that
     * corrupts the simulator: throw to exercise the quarantine guard,
     * or burn wall clock to exercise the watchdog.  Never set in
     * production paths; not part of any content hash.
     */
    std::function<void(const Fault &, Cycle)> injectHook;
};

/** Early-exit accounting of one runner (atomic; any thread count). */
struct InjectionStats
{
    std::uint64_t runs = 0;       ///< faulty runs actually simulated
    std::uint64_t earlyExits = 0; ///< ended at a reconverged checkpoint
    std::uint64_t quarantined = 0; ///< of which tripped the guard
    std::uint64_t replayMasked = 0;   ///< classified Masked off the trace
    std::uint64_t replayHandoffs = 0; ///< diverged into full simulation
    std::uint64_t replayCyclesSkipped = 0; ///< full-sim cycles avoided
    std::uint64_t replayHeadCycles = 0;    ///< pre-divergence head total
};

/** Runs golden and faulty executions of one program/configuration. */
class InjectionRunner
{
  public:
    // Back-compat aliases (pre-RunnerOptions call sites).
    static constexpr Cycle kDefaultCheckpointInterval =
        RunnerOptions::kDefaultCheckpointInterval;
    static constexpr unsigned kDefaultMaxCheckpoints =
        RunnerOptions::kDefaultMaxCheckpoints;

    InjectionRunner(const isa::Program &prog,
                    const uarch::CoreConfig &cfg,
                    const RunnerOptions &opts);

    InjectionRunner(
        const isa::Program &prog, const uarch::CoreConfig &cfg,
        Cycle checkpoint_interval = kDefaultCheckpointInterval,
        unsigned max_checkpoints = kDefaultMaxCheckpoints);

    /**
     * Execute the fault-free run (optionally with a profiler probe
     * attached) and capture the reference outcome plus periodic state
     * checkpoints for fast injection resume.
     */
    GoldenRun golden(uarch::Probe *probe = nullptr) const;

    /**
     * Inject @p fault, run to termination, classify against @p ref.
     * Resumes from the latest checkpoint at or before the flip cycle
     * when @p ref carries checkpoints.
     *
     * The run is executed under the quarantine guard: a simulator
     * exception or a wall-clock-watchdog trip is recorded as a
     * QuarantineRecord (policy Continue; the outcome is Crash) or
     * aborts with FatalError (policy Fail) — a pathological fault can
     * never take the campaign down with it.  @p detail, when given,
     * receives the per-run facts (early exit, quarantine reason).
     */
    Outcome inject(const Fault &fault, const GoldenRun &ref,
                   InjectDetail *detail = nullptr) const;

    /**
     * Per-outcome completion callback for injectBatch: invoked from
     * the executing thread as each FRESH injection finishes (memo
     * hits and duplicate aliases are not reported).  Used by the
     * suite scheduler to journal outcomes as they complete; must be
     * internally synchronized.
     */
    using OutcomeCallback = std::function<void(
        std::uint64_t key, Outcome o, const InjectDetail &detail)>;

    /**
     * Inject every fault of @p faults and return their outcomes in the
     * same order.  Duplicate faults (and faults already in @p memo) run
     * once; fresh work is sorted by flip cycle for checkpoint locality
     * and fanned out over @p jobs worker threads (0 = hardware
     * concurrency, 1 = inline).  Results are bit-identical for any
     * thread count: each outcome is a pure function of its fault.
     */
    std::vector<Outcome> injectBatch(const std::vector<Fault> &faults,
                                     const GoldenRun &ref, unsigned jobs,
                                     OutcomeMemo *memo = nullptr) const;

    /**
     * injectBatch on an EXTERNAL shared pool: every fresh injection is
     * submitted to @p group at per-injection granularity, so workers of
     * the shared pool interleave (steal) work from concurrent batches.
     * Blocks until the batch is done, help-running queued pool tasks
     * meanwhile (safe to call from inside a pool task).  @p group must
     * be used by one batch at a time.  Results are identical to the
     * jobs-overload for any pool size or schedule.
     */
    std::vector<Outcome> injectBatch(
        const std::vector<Fault> &faults, const GoldenRun &ref,
        base::TaskGroup &group, OutcomeMemo *memo = nullptr,
        const OutcomeCallback *on_outcome = nullptr) const;

    /**
     * Build the deterministic plan for @p faults: resolve @p memo hits,
     * collapse duplicates, cycle-sort the remaining work.  Callers then
     * run plan.work items in any order/thread
     * (`plan.outcomes[i] = inject(faults[i], ref)`) and finishBatch().
     */
    BatchPlan planBatch(const std::vector<Fault> &faults,
                        const OutcomeMemo *memo = nullptr) const;

    /** Publish a completed plan: memo inserts + duplicate-slot fills. */
    void finishBatch(BatchPlan &plan, OutcomeMemo *memo = nullptr) const;

    /** Classify a completed faulty run (exposed for testing). */
    static Outcome classify(const isa::ArchResult &faulty,
                            const uarch::Core &core, const GoldenRun &ref);

    /**
     * Saturating timeout budget: factor * golden_cycles + 1000 slack,
     * clamped at the Cycle maximum instead of wrapping (exposed for
     * testing; a factor of 0 counts as 1).
     */
    static Cycle timeoutBudget(Cycle golden_cycles, unsigned factor);

    const uarch::CoreConfig &config() const { return cfg_; }
    const RunnerOptions &options() const { return opts_; }
    Cycle checkpointInterval() const { return opts_.checkpointInterval; }

    /** Cumulative run / early-exit counts since construction. */
    InjectionStats injectionStats() const;

    /**
     * Every injection quarantined by this runner so far, sorted by
     * (fault key, reason) — a deterministic list for CampaignResult
     * and the store schema.
     */
    std::vector<QuarantineRecord> quarantineRecords() const;

  private:
    void recordQuarantine(const Fault &fault, std::string reason,
                          InjectDetail *detail) const;

    const isa::Program &prog_;
    uarch::CoreConfig cfg_;
    RunnerOptions opts_;
    mutable std::atomic<std::uint64_t> runs_{0};
    mutable std::atomic<std::uint64_t> earlyExits_{0};
    mutable std::atomic<std::uint64_t> replayMasked_{0};
    mutable std::atomic<std::uint64_t> replayHandoffs_{0};
    mutable std::atomic<std::uint64_t> replayCyclesSkipped_{0};
    mutable std::atomic<std::uint64_t> replayHeadCycles_{0};
    mutable std::mutex quarantineMu_;
    mutable std::vector<QuarantineRecord> quarantine_;
};

} // namespace merlin::faultsim

#endif // MERLIN_FAULTSIM_RUNNER_HH
