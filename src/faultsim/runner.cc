#include "faultsim/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <numeric>
#include <optional>

#include "base/logging.hh"
#include "base/threadpool.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace merlin::faultsim
{

using isa::TerminateReason;
using isa::TrapKind;

namespace
{

/**
 * Raised by the in-run wall-clock watchdog.  Deliberately NOT derived
 * from std::exception: the quarantine guard must distinguish it from
 * ordinary simulator failures, and nothing else may swallow it.
 */
struct WallClockExceeded
{
};

/** How many simulated cycles between wall-clock watchdog checks. */
constexpr std::uint32_t kWallCheckMask = 255;

/**
 * Registry instruments for the injection hot path, resolved once per
 * process instead of per injection (the registry lookup takes a
 * mutex; the instruments themselves are lock-free shards).
 */
struct InjectMetrics
{
    obs::Counter &runs = obs::Registry::global().counter("inject.runs");
    obs::Counter &earlyExits =
        obs::Registry::global().counter("inject.early_exits");
    obs::Counter &quarantined =
        obs::Registry::global().counter("inject.quarantined");
    obs::Counter &memoHits =
        obs::Registry::global().counter("inject.memo_hits");
    obs::Counter &replayMasked =
        obs::Registry::global().counter("inject.replay_masked");
    obs::Counter &replayHandoffs =
        obs::Registry::global().counter("inject.replay_handoffs");
    obs::Histogram &replaySkipped =
        obs::Registry::global().histogram("inject.replay_cycles_skipped");
    obs::Histogram &replayDivergence =
        obs::Registry::global().histogram("inject.replay_divergence_cycle");
    obs::Gauge &traceBytes =
        obs::Registry::global().gauge("replay.trace_bytes");
    obs::Gauge &traceEvents =
        obs::Registry::global().gauge("replay.trace_events");
    obs::Counter &dedupAliases =
        obs::Registry::global().counter("inject.dedup_aliases");
    obs::Histogram &wallUs =
        obs::Registry::global().histogram("inject.wall_us");
    obs::Histogram &captureUs =
        obs::Registry::global().histogram("snapshot.capture_us");
    obs::Counter &captureCopied =
        obs::Registry::global().counter("snapshot.capture_bytes_copied");
    obs::Counter &captureShared =
        obs::Registry::global().counter("snapshot.capture_bytes_shared");
    obs::Histogram &restoreUs =
        obs::Registry::global().histogram("snapshot.restore_us");
    obs::Counter &restoreCopied =
        obs::Registry::global().counter("snapshot.restore_bytes_copied");
    obs::Counter &restoreShared =
        obs::Registry::global().counter("snapshot.restore_bytes_shared");
};

InjectMetrics &
injectMetrics()
{
    static InjectMetrics m;
    return m;
}

/** Observes the elapsed microseconds on every exit path of a scope. */
struct ScopeTimer
{
    obs::Histogram &h;
    obs::TimePoint t0 = obs::now();
    ~ScopeTimer() { h.observe(obs::microsSince(t0)); }
};

} // namespace

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Masked:  return "Masked";
      case Outcome::SDC:     return "SDC";
      case Outcome::DUE:     return "DUE";
      case Outcome::Timeout: return "Timeout";
      case Outcome::Crash:   return "Crash";
      case Outcome::Assert:  return "Assert";
      case Outcome::Unknown: return "Unknown";
      default:               return "<bad>";
    }
}

// ---------------------------------------------------------- OutcomeMemo

OutcomeMemo::OutcomeMemo(std::size_t expected_faults)
{
    if (expected_faults == 0)
        return;
    const std::size_t per_shard = expected_faults / kShards + 1;
    for (Shard &s : shards_)
        s.map.reserve(per_shard);
}

bool
OutcomeMemo::lookup(std::uint64_t key, Outcome &out) const
{
    const Shard &s = shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end())
        return false;
    out = it->second;
    return true;
}

void
OutcomeMemo::insert(std::uint64_t key, Outcome o)
{
    Shard &s = shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.emplace(key, o);
}

std::size_t
OutcomeMemo::size() const
{
    std::size_t n = 0;
    for (const Shard &s : shards_) {
        std::lock_guard<std::mutex> lock(s.mu);
        n += s.map.size();
    }
    return n;
}

// ------------------------------------------------------ InjectionRunner

InjectionRunner::InjectionRunner(const isa::Program &prog,
                                 const uarch::CoreConfig &cfg,
                                 const RunnerOptions &opts)
    : prog_(prog), cfg_(cfg), opts_(opts)
{
    if (opts_.maxCheckpoints == 0)
        opts_.maxCheckpoints = 1;
}

InjectionRunner::InjectionRunner(const isa::Program &prog,
                                 const uarch::CoreConfig &cfg,
                                 Cycle checkpoint_interval,
                                 unsigned max_checkpoints)
    : InjectionRunner(prog, cfg, [&] {
          RunnerOptions o;
          o.checkpointInterval = checkpoint_interval;
          o.maxCheckpoints = max_checkpoints;
          return o;
      }())
{
}

Cycle
InjectionRunner::timeoutBudget(Cycle golden_cycles, unsigned factor)
{
    if (factor == 0)
        factor = 1;
    constexpr Cycle kSlack = 1000;
    constexpr Cycle kMax = std::numeric_limits<Cycle>::max();
    if (golden_cycles > (kMax - kSlack) / factor)
        return kMax;
    return factor * golden_cycles + kSlack;
}

InjectionStats
InjectionRunner::injectionStats() const
{
    InjectionStats s;
    s.runs = runs_.load(std::memory_order_relaxed);
    s.earlyExits = earlyExits_.load(std::memory_order_relaxed);
    s.replayMasked = replayMasked_.load(std::memory_order_relaxed);
    s.replayHandoffs = replayHandoffs_.load(std::memory_order_relaxed);
    s.replayCyclesSkipped =
        replayCyclesSkipped_.load(std::memory_order_relaxed);
    s.replayHeadCycles =
        replayHeadCycles_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(quarantineMu_);
        s.quarantined = quarantine_.size();
    }
    return s;
}

std::vector<QuarantineRecord>
InjectionRunner::quarantineRecords() const
{
    std::vector<QuarantineRecord> q;
    {
        std::lock_guard<std::mutex> lock(quarantineMu_);
        q = quarantine_;
    }
    std::sort(q.begin(), q.end(),
              [](const QuarantineRecord &a, const QuarantineRecord &b) {
                  return a.faultKey != b.faultKey
                             ? a.faultKey < b.faultKey
                             : a.reason < b.reason;
              });
    return q;
}

void
InjectionRunner::recordQuarantine(const Fault &fault, std::string reason,
                                  InjectDetail *detail) const
{
    if (opts_.quarantine == QuarantinePolicy::Fail) {
        fatal("injection quarantined (policy fail): fault key ",
              faultKey(fault), ", ", reason,
              " — rerun with --quarantine=continue to record the fault "
              "and keep the campaign going");
    }
    if (detail) {
        detail->quarantined = true;
        detail->reason = reason;
    }
    injectMetrics().quarantined.add();
    std::lock_guard<std::mutex> lock(quarantineMu_);
    quarantine_.push_back(QuarantineRecord{faultKey(fault),
                                           std::move(reason)});
}

GoldenRun
InjectionRunner::golden(uarch::Probe *probe) const
{
    obs::Span span("campaign", "golden " + prog_.name);
    InjectMetrics &m = injectMetrics();
    uarch::Core core(prog_, cfg_, probe);
    GoldenRun g;

    // Record the effect trace for the replay fast path.  Attached after
    // construction so reset-time initialisation is not mistaken for
    // kill-writes; skipped entirely under an injectHook, whose tests
    // observe every simulated cycle.
    std::shared_ptr<replay::EffectTrace> trace;
    std::optional<obs::Span> tspan;
    if (opts_.replay && !opts_.injectHook) {
        tspan.emplace("replay", "record " + prog_.name);
        trace = std::make_shared<replay::EffectTrace>(
            core.numRegisterFileEntries(), core.numStoreQueueEntries(),
            core.numL1dWords());
        core.setEffectSink(trace.get());
    }

    if (opts_.checkpointInterval == 0) {
        g.arch = core.run();
    } else {
        // Snapshots are taken between ticks, exactly where inject()
        // applies flips, so a resumed run replays the original
        // cycle-for-cycle.  The probe does not influence timing or
        // architectural state, so checkpoints from a profiled golden
        // run are valid resume points for probe-free injections.
        Cycle interval = opts_.checkpointInterval;
        for (;;) {
            if (core.cycle() != 0 && core.cycle() % interval == 0) {
                if (g.checkpoints.size() >= opts_.maxCheckpoints) {
                    // Keep every other checkpoint (those at even
                    // multiples of the doubled interval) and coarsen.
                    std::vector<uarch::Core::Snapshot> kept;
                    kept.reserve(opts_.maxCheckpoints / 2 + 1);
                    for (std::size_t i = 1; i < g.checkpoints.size();
                         i += 2)
                        kept.push_back(std::move(g.checkpoints[i]));
                    g.checkpoints = std::move(kept);
                    interval *= 2;
                }
                if (core.cycle() % interval == 0) {
                    uarch::SnapshotStats st;
                    const obs::TimePoint t0 = obs::now();
                    g.checkpoints.push_back(core.snapshot(&st));
                    m.captureUs.observe(obs::microsSince(t0));
                    m.captureCopied.add(st.bytesCopied);
                    m.captureShared.add(st.bytesShared);
                }
            }
            if (!core.tick())
                break;
        }
        g.arch = core.result();
    }

    if (trace) {
        m.traceBytes.set(static_cast<double>(trace->memoryBytes()));
        m.traceEvents.set(static_cast<double>(trace->numEvents()));
        g.trace = std::move(trace);
        tspan.reset();
    }

    g.stats = core.stats();
    g.windowed = cfg_.instructionWindowEnd != 0;
    if (g.arch.reason != TerminateReason::Halted &&
        g.arch.reason != TerminateReason::WindowEnd) {
        fatal("golden run did not terminate cleanly (reason ",
              static_cast<int>(g.arch.reason), ", workload '", prog_.name,
              "')");
    }
    if (g.windowed) {
        for (unsigned r = 0; r < isa::NUM_ARCH_REGS; ++r)
            g.archRegs[r] = core.archRegValue(r);
        g.archMem = std::make_shared<const isa::SegmentedMemory>(
            core.archMemoryView());
    }
    return g;
}

Outcome
InjectionRunner::classify(const isa::ArchResult &faulty,
                          const uarch::Core &core, const GoldenRun &ref)
{
    switch (faulty.reason) {
      case TerminateReason::CycleLimit:
      case TerminateReason::Deadlock:
        return Outcome::Timeout;

      case TerminateReason::Trapped: {
        MERLIN_ASSERT(!faulty.traps.empty(), "trap without trap log");
        const TrapKind kind = faulty.traps.back().kind;
        if (isa::isExceptionTrap(kind)) {
            // Golden runs are trap-free by construction, so any
            // exception-family trap is an extra detected event -> DUE.
            return Outcome::DUE;
        }
        return Outcome::Crash;
      }

      case TerminateReason::Halted: {
        if (faulty.output == ref.arch.output &&
            faulty.exitCode == ref.arch.exitCode) {
            return Outcome::Masked;
        }
        return Outcome::SDC;
      }

      case TerminateReason::WindowEnd: {
        // Table-4 classification: compare the architectural state at the
        // window boundary; a surviving difference is a latent fault.
        if (faulty.output != ref.arch.output)
            return Outcome::SDC;
        for (unsigned r = 0; r < isa::NUM_ARCH_REGS; ++r) {
            if (core.archRegValue(r) != ref.archRegs[r])
                return Outcome::Unknown;
        }
        if (!core.archMemoryView().contentEquals(*ref.archMem))
            return Outcome::Unknown;
        return Outcome::Masked;
      }

      default:
        panic("classify: unexpected termination reason");
    }
}

Outcome
InjectionRunner::inject(const Fault &fault, const GoldenRun &ref,
                        InjectDetail *detail) const
{
    uarch::CoreConfig cfg = cfg_;
    // The paper's timeout rule: timeoutFactor x the fault-free
    // execution time (saturating, never wrapping).
    cfg.maxCycles = timeoutBudget(ref.stats.cycles, opts_.timeoutFactor);
    runs_.fetch_add(1, std::memory_order_relaxed);

    InjectMetrics &m = injectMetrics();
    m.runs.add();
    obs::Span span("inject", "injection");
    const ScopeTimer timed{m.wallUs};

    const bool watchdog = opts_.wallClockLimit > 0.0;
    const obs::TimePoint wall_start = timed.t0;
    std::uint32_t wall_tick = 0;

    try {
        // Checkpoints are sorted ascending by construction; `after`
        // is the first one past the flip, `prev(after)` the resume
        // point.
        auto after = std::upper_bound(
            ref.checkpoints.begin(), ref.checkpoints.end(), fault.cycle,
            [](Cycle c, const uarch::Core::Snapshot &s) {
                return c < s.cycle();
            });
        const uarch::Core::Snapshot *resume =
            after != ref.checkpoints.begin() ? &*std::prev(after)
                                             : nullptr;

        // Replay fast path: ask the golden effect trace for the flip's
        // first architectural consequence before simulating anything.
        const replay::EffectTrace *trace =
            (opts_.replay && !opts_.injectHook) ? ref.trace.get()
                                                : nullptr;
        bool flip_at_restore = false;
        if (trace) {
            // Classic resume cycle — the baseline every head/skip
            // figure is measured against.
            const Cycle r0 = resume ? resume->cycle() : 0;
            const replay::FirstTouch ft = trace->firstTouch(
                fault.structure, fault.entry, fault.bit, fault.cycle);

            if (ft.kind == replay::Touch::Killed ||
                (ft.kind == replay::Touch::None && !ref.windowed)) {
                // The flip is overwritten before any read (or never
                // touched in a to-completion run): the faulty run's
                // observable behaviour is the golden run's.  Masked,
                // zero cycles simulated.  Windowed never-touched flips
                // do NOT take this exit — they are still live at the
                // window end and must run the Table-4 comparison.
                obs::Span rspan("replay", "shortcut-masked");
                const Cycle head = ref.stats.cycles - r0;
                replayMasked_.fetch_add(1, std::memory_order_relaxed);
                replayCyclesSkipped_.fetch_add(
                    head, std::memory_order_relaxed);
                replayHeadCycles_.fetch_add(head,
                                            std::memory_order_relaxed);
                m.replayMasked.add();
                m.replaySkipped.observe(head);
                if (detail) {
                    detail->replay = ReplayAction::Masked;
                    detail->replayCyclesSkipped = head;
                    detail->replayHeadCycles = head;
                }
                return Outcome::Masked;
            }

            // Diverged at ft.cycle: any checkpoint in [flip, ft.cycle]
            // holds state identical to the faulty run's except for the
            // flipped byte itself, so full simulation may start there
            // with the flip applied at restore.  Windowed never-touched
            // flips hand off the same way with no divergence bound
            // (latest checkpoint), keeping the window-end comparison.
            const Cycle limit = ft.kind == replay::Touch::Diverged
                                    ? ft.cycle
                                    : std::numeric_limits<Cycle>::max();
            auto ub = std::upper_bound(
                ref.checkpoints.begin(), ref.checkpoints.end(), limit,
                [](Cycle c, const uarch::Core::Snapshot &s) {
                    return c < s.cycle();
                });
            const uarch::Core::Snapshot *handoff =
                ub != ref.checkpoints.begin() ? &*std::prev(ub) : nullptr;
            Cycle skipped = 0;
            if (handoff && handoff->cycle() >= fault.cycle) {
                skipped = handoff->cycle() - r0;
                resume = handoff;
                after = ub;
                flip_at_restore = true;
            }
            // else: no checkpoint inside the head — classic path, with
            // the handoff still counted (skipped = 0).
            const Cycle head = (ft.kind == replay::Touch::Diverged
                                    ? ft.cycle
                                    : ref.stats.cycles) -
                               r0;
            replayHandoffs_.fetch_add(1, std::memory_order_relaxed);
            replayCyclesSkipped_.fetch_add(skipped,
                                           std::memory_order_relaxed);
            replayHeadCycles_.fetch_add(head, std::memory_order_relaxed);
            m.replayHandoffs.add();
            m.replaySkipped.observe(skipped);
            if (ft.kind == replay::Touch::Diverged)
                m.replayDivergence.observe(ft.cycle - fault.cycle);
            if (detail) {
                detail->replay = ReplayAction::Handoff;
                detail->replayCyclesSkipped = skipped;
                detail->replayHeadCycles = head;
            }
        }

        uarch::SnapshotStats rstats;
        const obs::TimePoint restore_t0 = obs::now();
        uarch::Core core =
            resume ? uarch::Core(prog_, cfg, *resume, &rstats)
                   : uarch::Core(prog_, cfg);
        if (resume) {
            m.restoreUs.observe(obs::microsBetween(restore_t0,
                                                   obs::now()));
            m.restoreCopied.add(rstats.bytesCopied);
            m.restoreShared.add(rstats.bytesShared);
        }
        const auto applyFlip = [&](uarch::Core &c) {
            switch (fault.structure) {
              case uarch::Structure::RegisterFile:
                c.flipRegisterFileBit(fault.entry, fault.bit);
                break;
              case uarch::Structure::StoreQueue:
                c.flipStoreQueueBit(fault.entry, fault.bit);
                break;
              case uarch::Structure::L1DCache:
                c.flipL1dBit(fault.entry, fault.bit);
                break;
            }
        };
        bool applied = false;
        if (flip_at_restore) {
            // Handoff resume: the golden state at this checkpoint
            // differs from the faulty run's only in the flipped byte
            // (the trace proved nothing touched it since the flip), so
            // applying the flip here reconstructs it exactly.
            applyFlip(core);
            applied = true;
        }
        for (;;) {
            if (!applied && core.cycle() == fault.cycle) {
                applyFlip(core);
                applied = true;
            }
            // Test hook: model a fault that corrupts the simulator
            // itself (throw) or wedges it (burn wall clock).
            if (applied && opts_.injectHook)
                opts_.injectHook(fault, core.cycle());
            // Real-wall-clock watchdog, checked every few hundred
            // cycles: a livelocking simulator that keeps ticking is
            // quarantined instead of stalling the whole campaign.
            if (watchdog && (++wall_tick & kWallCheckMask) == 0 &&
                obs::secondsSince(wall_start) > opts_.wallClockLimit) {
                throw WallClockExceeded{};
            }
            // Golden-reconvergence early exit: at each checkpoint
            // cycle past the flip, a full state match proves the
            // faulty run's future is the golden run's future, whose
            // classification against itself is Masked by definition.
            // The compare is cheap when it fails (divergent registers
            // hit first) and chunk-identity-fast when memory is still
            // shared with the snapshot.
            if (applied && opts_.earlyExit &&
                after != ref.checkpoints.end() &&
                core.cycle() == after->cycle()) {
                if (core.stateEquals(*after)) {
                    earlyExits_.fetch_add(1, std::memory_order_relaxed);
                    m.earlyExits.add();
                    if (detail)
                        detail->earlyExit = true;
                    return Outcome::Masked;
                }
                ++after;
            }
            if (!core.tick())
                break;
        }
        return classify(core.result(), core, ref);
    } catch (const SimAssertError &) {
        // A flipped bit drove the simulator into an invariant violation.
        return Outcome::Assert;
    } catch (const WallClockExceeded &) {
        recordQuarantine(fault,
                         "wall-clock watchdog: run exceeded the real-time "
                         "limit while still ticking",
                         detail);
        return Outcome::Crash;
    } catch (const std::exception &e) {
        // Simulator-process failure: counted in the Crash class, like
        // GeFIN's "simulator crash" subcategory — and quarantined, so
        // the campaign records exactly which fault corrupted the
        // simulator (e.what() is deterministic for a deterministic
        // simulator, keeping the record byte-stable).
        recordQuarantine(fault,
                         std::string("simulator exception: ") + e.what(),
                         detail);
        return Outcome::Crash;
    } catch (...) {
        // A non-standard exception would previously have escaped the
        // pool worker and terminated the whole process.
        recordQuarantine(fault, "non-standard exception", detail);
        return Outcome::Crash;
    }
}

BatchPlan
InjectionRunner::planBatch(const std::vector<Fault> &faults,
                           const OutcomeMemo *memo) const
{
    BatchPlan plan;
    plan.outcomes.assign(faults.size(), Outcome::Masked);
    plan.keys.resize(faults.size());
    if (faults.empty())
        return plan;

    // Resolve memo hits and collapse duplicates: the first occurrence
    // of each key runs, later ones alias its slot afterwards.
    std::unordered_map<std::uint64_t, std::uint32_t, FaultKeyHash> first;
    first.reserve(faults.size());
    plan.work.reserve(faults.size());
    std::uint64_t memo_hits = 0;
    for (std::uint32_t i = 0; i < faults.size(); ++i) {
        plan.keys[i] = faultKey(faults[i]);
        Outcome cached;
        if (memo && memo->lookup(plan.keys[i], cached)) {
            plan.outcomes[i] = cached;
            ++memo_hits;
            continue;
        }
        auto [it, fresh] = first.emplace(plan.keys[i], i);
        if (fresh)
            plan.work.push_back(i);
        else
            plan.aliases.emplace_back(i, it->second);
    }
    if (memo_hits)
        injectMetrics().memoHits.add(memo_hits);
    if (!plan.aliases.empty())
        injectMetrics().dedupAliases.add(plan.aliases.size());

    // Cycle-sorted execution order: neighbouring runs resume from the
    // same checkpoint, so their pre-fault replay shares length.  The
    // tie-break keeps the order fully deterministic.
    std::sort(plan.work.begin(), plan.work.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return faults[a].cycle != faults[b].cycle
                             ? faults[a].cycle < faults[b].cycle
                             : a < b;
              });
    return plan;
}

void
InjectionRunner::finishBatch(BatchPlan &plan, OutcomeMemo *memo) const
{
    if (memo) {
        for (std::uint32_t i : plan.work)
            memo->insert(plan.keys[i], plan.outcomes[i]);
    }
    for (auto [dst, src] : plan.aliases)
        plan.outcomes[dst] = plan.outcomes[src];
}

std::vector<Outcome>
InjectionRunner::injectBatch(const std::vector<Fault> &faults,
                             const GoldenRun &ref, unsigned jobs,
                             OutcomeMemo *memo) const
{
    BatchPlan plan = planBatch(faults, memo);

    const auto runOne = [&](std::uint64_t w) {
        const std::uint32_t i = plan.work[w];
        plan.outcomes[i] = inject(faults[i], ref);
    };

    if (jobs == 0)
        jobs = base::ThreadPool::hardwareThreads();
    if (jobs <= 1 || plan.work.size() <= 1) {
        for (std::uint64_t w = 0; w < plan.work.size(); ++w)
            runOne(w);
    } else {
        base::ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs, plan.work.size())));
        pool.parallelFor(plan.work.size(), runOne);
    }

    finishBatch(plan, memo);
    return std::move(plan.outcomes);
}

std::vector<Outcome>
InjectionRunner::injectBatch(const std::vector<Fault> &faults,
                             const GoldenRun &ref, base::TaskGroup &group,
                             OutcomeMemo *memo,
                             const OutcomeCallback *on_outcome) const
{
    BatchPlan plan = planBatch(faults, memo);

    // One pool task per injection: the shared pool's queue interleaves
    // these with every other in-flight batch, which is exactly the
    // cross-campaign work stealing the suite scheduler relies on.  Each
    // task writes a slot derived from its fault, so any schedule yields
    // the same outcome vector.  The callback fires per completed fresh
    // injection (any thread, any order) — the journal hook.
    for (std::uint32_t w = 0;
         w < static_cast<std::uint32_t>(plan.work.size()); ++w) {
        group.submit([this, &plan, &faults, &ref, on_outcome, w] {
            const std::uint32_t i = plan.work[w];
            InjectDetail detail;
            plan.outcomes[i] = inject(faults[i], ref, &detail);
            if (on_outcome && *on_outcome)
                (*on_outcome)(plan.keys[i], plan.outcomes[i], detail);
        });
    }
    group.wait();

    finishBatch(plan, memo);
    return std::move(plan.outcomes);
}

} // namespace merlin::faultsim
