#include "faultsim/runner.hh"

#include "base/logging.hh"

namespace merlin::faultsim
{

using isa::TerminateReason;
using isa::TrapKind;

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Masked:  return "Masked";
      case Outcome::SDC:     return "SDC";
      case Outcome::DUE:     return "DUE";
      case Outcome::Timeout: return "Timeout";
      case Outcome::Crash:   return "Crash";
      case Outcome::Assert:  return "Assert";
      case Outcome::Unknown: return "Unknown";
      default:               return "<bad>";
    }
}

InjectionRunner::InjectionRunner(const isa::Program &prog,
                                 const uarch::CoreConfig &cfg)
    : prog_(prog), cfg_(cfg)
{
}

GoldenRun
InjectionRunner::golden(uarch::Probe *probe) const
{
    uarch::Core core(prog_, cfg_, probe);
    GoldenRun g;
    g.arch = core.run();
    g.stats = core.stats();
    g.windowed = cfg_.instructionWindowEnd != 0;
    if (g.arch.reason != TerminateReason::Halted &&
        g.arch.reason != TerminateReason::WindowEnd) {
        fatal("golden run did not terminate cleanly (reason ",
              static_cast<int>(g.arch.reason), ", workload '", prog_.name,
              "')");
    }
    if (g.windowed) {
        for (unsigned r = 0; r < isa::NUM_ARCH_REGS; ++r)
            g.archRegs[r] = core.archRegValue(r);
        g.archMem = std::make_shared<const isa::SegmentedMemory>(
            core.archMemoryView());
    }
    return g;
}

Outcome
InjectionRunner::classify(const isa::ArchResult &faulty,
                          const uarch::Core &core, const GoldenRun &ref)
{
    switch (faulty.reason) {
      case TerminateReason::CycleLimit:
      case TerminateReason::Deadlock:
        return Outcome::Timeout;

      case TerminateReason::Trapped: {
        MERLIN_ASSERT(!faulty.traps.empty(), "trap without trap log");
        const TrapKind kind = faulty.traps.back().kind;
        if (isa::isExceptionTrap(kind)) {
            // Golden runs are trap-free by construction, so any
            // exception-family trap is an extra detected event -> DUE.
            return Outcome::DUE;
        }
        return Outcome::Crash;
      }

      case TerminateReason::Halted: {
        if (faulty.output == ref.arch.output &&
            faulty.exitCode == ref.arch.exitCode) {
            return Outcome::Masked;
        }
        return Outcome::SDC;
      }

      case TerminateReason::WindowEnd: {
        // Table-4 classification: compare the architectural state at the
        // window boundary; a surviving difference is a latent fault.
        if (faulty.output != ref.arch.output)
            return Outcome::SDC;
        for (unsigned r = 0; r < isa::NUM_ARCH_REGS; ++r) {
            if (core.archRegValue(r) != ref.archRegs[r])
                return Outcome::Unknown;
        }
        if (!core.archMemoryView().contentEquals(*ref.archMem))
            return Outcome::Unknown;
        return Outcome::Masked;
      }

      default:
        panic("classify: unexpected termination reason");
    }
}

Outcome
InjectionRunner::inject(const Fault &fault, const GoldenRun &ref) const
{
    uarch::CoreConfig cfg = cfg_;
    // The paper's timeout rule: 3x the fault-free execution time.
    cfg.maxCycles = 3 * ref.stats.cycles + 1000;

    try {
        uarch::Core core(prog_, cfg);
        bool applied = false;
        for (;;) {
            if (!applied && core.cycle() == fault.cycle) {
                switch (fault.structure) {
                  case uarch::Structure::RegisterFile:
                    core.flipRegisterFileBit(fault.entry, fault.bit);
                    break;
                  case uarch::Structure::StoreQueue:
                    core.flipStoreQueueBit(fault.entry, fault.bit);
                    break;
                  case uarch::Structure::L1DCache:
                    core.flipL1dBit(fault.entry, fault.bit);
                    break;
                }
                applied = true;
            }
            if (!core.tick())
                break;
        }
        return classify(core.result(), core, ref);
    } catch (const SimAssertError &) {
        // A flipped bit drove the simulator into an invariant violation.
        return Outcome::Assert;
    } catch (const std::exception &) {
        // Simulator-process failure: counted in the Crash class, like
        // GeFIN's "simulator crash" subcategory.
        return Outcome::Crash;
    }
}

} // namespace merlin::faultsim
