#include "uarch/branch.hh"

#include <bit>

#include "base/logging.hh"

namespace merlin::uarch
{

namespace
{

unsigned
log2u(unsigned v)
{
    MERLIN_ASSERT(v != 0 && (v & (v - 1)) == 0, "size must be power of two");
    return static_cast<unsigned>(std::countr_zero(v));
}

} // namespace

TournamentPredictor::TournamentPredictor(const CoreConfig &cfg)
    : localBits_(log2u(cfg.localPredictorEntries)),
      globalBits_(log2u(cfg.globalPredictorEntries)),
      localHistory_(cfg.localPredictorEntries, 0),
      localCounters_(cfg.localPredictorEntries, 1),
      globalCounters_(cfg.globalPredictorEntries, 1),
      chooser_(cfg.chooserEntries, 1)
{
}

void
TournamentPredictor::bump(std::uint8_t &ctr, bool up)
{
    if (up) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

PredictionState
TournamentPredictor::predict(Addr pc)
{
    PredictionState st;
    st.ghistSnapshot = ghist_;

    const std::uint32_t pc_idx = static_cast<std::uint32_t>(pc >> 3);
    st.localIdx = pc_idx & ((1u << localBits_) - 1);
    const std::uint16_t lhist =
        localHistory_[st.localIdx] & ((1u << localBits_) - 1);
    // Local component indexes its counters with the per-branch history.
    const bool local_taken = localCounters_[lhist] >= 2;

    st.globalIdx =
        (pc_idx ^ ghist_) & ((1u << globalBits_) - 1);
    const bool global_taken = globalCounters_[st.globalIdx] >= 2;

    st.chooserIdx = ghist_ & (chooser_.size() - 1);
    const bool use_global = chooser_[st.chooserIdx] >= 2;

    st.taken = use_global ? global_taken : local_taken;

    // Speculative history update.
    ghist_ = ((ghist_ << 1) | (st.taken ? 1 : 0)) &
             ((1u << globalBits_) - 1);
    return st;
}

void
TournamentPredictor::update(Addr pc, bool taken,
                            const PredictionState &state)
{
    const std::uint16_t lhist =
        localHistory_[state.localIdx] & ((1u << localBits_) - 1);
    const bool local_taken = localCounters_[lhist] >= 2;
    const bool global_taken = globalCounters_[state.globalIdx] >= 2;

    // Train the chooser toward whichever component was right.
    if (local_taken != global_taken)
        bump(chooser_[state.chooserIdx], global_taken == taken);

    bump(localCounters_[lhist], taken);
    bump(globalCounters_[state.globalIdx], taken);

    localHistory_[state.localIdx] =
        static_cast<std::uint16_t>((lhist << 1) | (taken ? 1 : 0));
    (void)pc;
}

void
TournamentPredictor::repairHistory(const PredictionState &state, bool taken)
{
    ghist_ = ((state.ghistSnapshot << 1) | (taken ? 1 : 0)) &
             ((1u << globalBits_) - 1);
}

bool
TournamentPredictor::stateEquals(const TournamentPredictor &o) const
{
    return ghist_ == o.ghist_ && localHistory_ == o.localHistory_ &&
           localCounters_ == o.localCounters_ &&
           globalCounters_ == o.globalCounters_ && chooser_ == o.chooser_;
}

std::uint64_t
TournamentPredictor::stateBytes() const
{
    return localHistory_.size() * sizeof(std::uint16_t) +
           localCounters_.size() + globalCounters_.size() +
           chooser_.size() + sizeof(ghist_);
}

Btb::Btb(unsigned entries)
    : entries_(entries)
{
    MERLIN_ASSERT((entries & (entries - 1)) == 0, "BTB size power of two");
}

std::optional<Addr>
Btb::lookup(Addr pc) const
{
    const Entry &e = entries_[(pc >> 3) & (entries_.size() - 1)];
    if (e.valid && e.pc == pc)
        return e.target;
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    Entry &e = entries_[(pc >> 3) & (entries_.size() - 1)];
    e.valid = true;
    e.pc = pc;
    e.target = target;
}

bool
Btb::stateEquals(const Btb &o) const
{
    return entries_ == o.entries_;
}

std::uint64_t
Btb::stateBytes() const
{
    return entries_.size() * sizeof(Entry);
}

Ras::Ras(unsigned entries)
    : stack_(entries, 0)
{
    MERLIN_ASSERT(entries > 0, "RAS must have entries");
}

Ras::Snapshot
Ras::snapshot() const
{
    const std::uint32_t prev =
        (top_ + stack_.size() - 1) % stack_.size();
    return Snapshot{top_, stack_[prev]};
}

void
Ras::restore(const Snapshot &snap)
{
    top_ = snap.top;
    const std::uint32_t prev =
        (top_ + stack_.size() - 1) % stack_.size();
    stack_[prev] = snap.topValue;
}

void
Ras::push(Addr ret_addr)
{
    stack_[top_] = ret_addr;
    top_ = (top_ + 1) % stack_.size();
}

Addr
Ras::pop()
{
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    return stack_[top_];
}

bool
Ras::stateEquals(const Ras &o) const
{
    return top_ == o.top_ && stack_ == o.stack_;
}

std::uint64_t
Ras::stateBytes() const
{
    return stack_.size() * sizeof(Addr) + sizeof(top_);
}

} // namespace merlin::uarch
