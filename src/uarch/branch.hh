/**
 * @file
 * Branch prediction: tournament predictor (local + gshare + chooser),
 * direct-mapped BTB, and a return address stack.
 *
 * Direction state (2-bit counters) is trained at commit; the global
 * history register is updated speculatively at predict time and repaired
 * from a per-branch snapshot on squash, as in the gem5 O3 model.
 */

#ifndef MERLIN_UARCH_BRANCH_HH
#define MERLIN_UARCH_BRANCH_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/types.hh"
#include "uarch/config.hh"

namespace merlin::uarch
{

/** Snapshot carried by each in-flight branch for training and repair. */
struct PredictionState
{
    bool taken = false;
    std::uint32_t ghistSnapshot = 0; ///< history *before* this branch
    std::uint16_t localIdx = 0;
    std::uint16_t globalIdx = 0;
    std::uint16_t chooserIdx = 0;

    bool operator==(const PredictionState &) const = default;
};

/** Tournament direction predictor. */
class TournamentPredictor
{
  public:
    explicit TournamentPredictor(const CoreConfig &cfg);

    /** Predict @p pc; advances speculative global history. */
    PredictionState predict(Addr pc);

    /** Train counters and local history with the committed outcome. */
    void update(Addr pc, bool taken, const PredictionState &state);

    /** Restore speculative history after a squash, then apply @p taken. */
    void repairHistory(const PredictionState &state, bool taken);

    std::uint32_t globalHistory() const { return ghist_; }

    /** Full table + history equality (reconvergence check). */
    bool stateEquals(const TournamentPredictor &o) const;

    /** Bytes a memberwise copy duplicates (snapshot accounting). */
    std::uint64_t stateBytes() const;

  private:
    static void bump(std::uint8_t &ctr, bool up);

    unsigned localBits_;
    unsigned globalBits_;
    std::vector<std::uint16_t> localHistory_;
    std::vector<std::uint8_t> localCounters_;
    std::vector<std::uint8_t> globalCounters_;
    std::vector<std::uint8_t> chooser_;
    std::uint32_t ghist_ = 0;
};

/** Direct-mapped branch target buffer. */
class Btb
{
  public:
    explicit Btb(unsigned entries);

    std::optional<Addr> lookup(Addr pc) const;
    void update(Addr pc, Addr target);

    bool stateEquals(const Btb &o) const;
    std::uint64_t stateBytes() const;

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;

        bool operator==(const Entry &) const = default;
    };
    std::vector<Entry> entries_;
};

/** Return address stack with single-entry squash repair. */
class Ras
{
  public:
    explicit Ras(unsigned entries);

    struct Snapshot
    {
        std::uint32_t top;
        Addr topValue;

        bool operator==(const Snapshot &) const = default;
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &snap);
    void push(Addr ret_addr);
    Addr pop();

    bool stateEquals(const Ras &o) const;
    std::uint64_t stateBytes() const;

  private:
    std::vector<Addr> stack_;
    std::uint32_t top_ = 0; ///< index of next free slot (wraps)
};

} // namespace merlin::uarch

#endif // MERLIN_UARCH_BRANCH_HH
