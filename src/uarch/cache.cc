#include "uarch/cache.hh"

#include <algorithm>
#include <cstring>

#include "base/bits.hh"
#include "base/logging.hh"
#include "uarch/probe.hh"

namespace merlin::uarch
{

Cache::Cache(std::string name, const CacheConfig &cfg, Cache *lower,
             isa::SegmentedMemory *mem, std::uint32_t chunk_bytes)
    : name_(std::move(name)), cfg_(cfg), lower_(lower), mem_(mem)
{
    MERLIN_ASSERT((lower_ == nullptr) != (mem_ == nullptr),
                  "cache needs exactly one backing level");
    MERLIN_ASSERT(cfg_.numSets() > 0 && (cfg_.lineSize % 8) == 0,
                  "bad cache geometry");
    lines_.assign(std::size_t(cfg_.numSets()) * cfg_.ways, Line{});
    // A chunk must hold whole lines so that line views never span
    // chunks; both values are powers of two, so max() suffices.
    const std::uint32_t chunk = std::max(
        chunk_bytes ? chunk_bytes : base::CowBytes::kDefaultChunkBytes,
        cfg_.lineSize);
    data_ = base::CowBytes(
        std::size_t(cfg_.numSets()) * cfg_.ways * cfg_.lineSize, chunk);
}

void
Cache::repoint(Cache *lower, isa::SegmentedMemory *mem)
{
    MERLIN_ASSERT((lower == nullptr) != (mem == nullptr),
                  "cache needs exactly one backing level");
    lower_ = lower;
    mem_ = mem;
    sink_ = nullptr;
}

const std::uint8_t *
Cache::lineData(std::uint32_t set, std::uint32_t way) const
{
    return data_.readPtr(lineOffset(set, way), cfg_.lineSize);
}

std::uint8_t *
Cache::lineDataMut(std::uint32_t set, std::uint32_t way)
{
    return data_.writePtr(lineOffset(set, way), cfg_.lineSize);
}

std::uint32_t
Cache::readLineFromBelow(Addr line_addr, std::uint8_t *out, Cycle now,
                         Rip rip, Upc upc)
{
    if (lower_) {
        AccessResult r = lower_->access(line_addr, false, now, rip, upc);
        std::memcpy(out, lower_->lineData(r.set, r.way), cfg_.lineSize);
        return r.latency;
    }
    isa::TrapKind t = mem_->readBlock(line_addr, out, cfg_.lineSize);
    MERLIN_ASSERT(t == isa::TrapKind::None,
                  "line fill from unmapped memory at 0x", std::hex,
                  line_addr);
    return memLatency_;
}

std::uint32_t
Cache::writeLineBelow(Addr line_addr, const std::uint8_t *data, Cycle now,
                      Rip rip, Upc upc)
{
    if (lower_) {
        AccessResult r = lower_->access(line_addr, true, now, rip, upc);
        std::memcpy(lower_->lineDataMut(r.set, r.way), data,
                    cfg_.lineSize);
        return r.latency;
    }
    isa::TrapKind t = mem_->writeBlock(line_addr, data, cfg_.lineSize);
    MERLIN_ASSERT(t == isa::TrapKind::None,
                  "write-back to unmapped memory at 0x", std::hex,
                  line_addr);
    return memLatency_;
}

Cache::AccessResult
Cache::access(Addr addr, bool is_write, Cycle now, Rip rip, Upc upc)
{
    const Addr laddr = lineAddr(addr);
    const std::uint32_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    Line *set_lines = &lines_[std::size_t(set) * cfg_.ways];

    AccessResult res;
    res.set = set;

    // Hit path.
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &line = set_lines[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++lruCounter_;
            if (is_write)
                line.dirty = true;
            ++hits_;
            res.way = w;
            res.hit = true;
            res.latency = cfg_.hitLatency;
            return res;
        }
    }

    // Miss: prefer an invalid way, else evict the least recently used.
    ++misses_;
    std::uint32_t victim = 0;
    bool have_invalid = false;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (!set_lines[w].valid) {
            victim = w;
            have_invalid = true;
            break;
        }
    }
    if (!have_invalid) {
        for (std::uint32_t w = 1; w < cfg_.ways; ++w) {
            if (set_lines[w].lruStamp < set_lines[victim].lruStamp)
                victim = w;
        }
    }

    Line &line = set_lines[victim];
    std::uint32_t latency = cfg_.hitLatency;

    if (line.valid && line.dirty) {
        // Write-back: the whole victim line is read out of the array.
        const Addr victim_addr =
            (line.tag * cfg_.numSets() + set) * cfg_.lineSize;
        if (sink_) {
            for (std::uint32_t o = 0; o < cfg_.lineSize; o += 8) {
                sink_->onCacheWordWritebackRead(wordIndex(set, victim, o),
                                                now, rip, upc);
                sink_->onCacheWordReadMasked(wordIndex(set, victim, o),
                                             0xff, now);
            }
        }
        writeLineBelow(victim_addr, lineData(set, victim), now, rip, upc);
        ++writebacks_;
    }

    // Fill from below (overwrites the whole line's storage).
    latency += readLineFromBelow(laddr, lineDataMut(set, victim), now,
                                 rip, upc);
    line.valid = true;
    line.dirty = is_write;
    line.tag = tag;
    line.lruStamp = ++lruCounter_;
    if (sink_) {
        for (std::uint32_t o = 0; o < cfg_.lineSize; o += 8) {
            sink_->onCacheWordWrite(wordIndex(set, victim, o), now);
            sink_->onCacheWordWriteMasked(wordIndex(set, victim, o),
                                          0xff, now);
        }
    }

    res.way = victim;
    res.hit = false;
    res.latency = latency;
    return res;
}

std::uint64_t
Cache::readBytes(std::uint32_t set, std::uint32_t way, std::uint32_t offset,
                 unsigned size) const
{
    MERLIN_ASSERT(offset + size <= cfg_.lineSize, "read past line end");
    return loadLE(lineData(set, way) + offset, size);
}

void
Cache::writeBytes(std::uint32_t set, std::uint32_t way, std::uint32_t offset,
                  unsigned size, std::uint64_t value, Cycle now)
{
    MERLIN_ASSERT(offset + size <= cfg_.lineSize, "write past line end");
    storeLE(lineDataMut(set, way) + offset, value, size);
    if (sink_) {
        sink_->onCacheWordWrite(wordIndex(set, way, offset), now);
        // A sub-word store may straddle a word boundary; report the
        // exact bytes of every word it touches.
        for (std::uint32_t b = offset; b < offset + size;) {
            const std::uint32_t word_end = (b & ~7u) + 8;
            const std::uint32_t run = std::min(offset + size, word_end);
            std::uint8_t mask = 0;
            for (std::uint32_t i = b; i < run; ++i)
                mask |= static_cast<std::uint8_t>(1u << (i & 7u));
            sink_->onCacheWordWriteMasked(wordIndex(set, way, b), mask,
                                          now);
            b = run;
        }
    }
}

void
Cache::flipBit(EntryIndex word, unsigned bit)
{
    MERLIN_ASSERT(word < cfg_.totalWords(), "cache word out of range");
    MERLIN_ASSERT(bit < 64, "bit out of range");
    *data_.writePtr(std::size_t(word) * 8 + bit / 8, 1) ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
}

void
Cache::applyDirtyLines(isa::SegmentedMemory &mem) const
{
    for (std::uint32_t set = 0; set < cfg_.numSets(); ++set) {
        for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
            const Line &line = lines_[std::size_t(set) * cfg_.ways + w];
            if (!line.valid || !line.dirty)
                continue;
            const Addr addr =
                (line.tag * cfg_.numSets() + set) * cfg_.lineSize;
            mem.writeBlock(addr, lineData(set, w), cfg_.lineSize);
        }
    }
}

bool
Cache::stateEquals(const Cache &o) const
{
    // Counters first (cheap, and divergent timing shows up here), the
    // COW data array last (pointer identity makes it nearly free when
    // the two cores still share it).
    return lruCounter_ == o.lruCounter_ && hits_ == o.hits_ &&
           misses_ == o.misses_ && writebacks_ == o.writebacks_ &&
           lines_ == o.lines_ && data_.contentEquals(o.data_);
}

std::uint64_t
Cache::metaBytes() const
{
    return lines_.size() * sizeof(Line) +
           data_.numChunks() * sizeof(void *);
}

const char *
structureName(Structure s)
{
    switch (s) {
      case Structure::RegisterFile: return "RF";
      case Structure::StoreQueue:   return "SQ";
      case Structure::L1DCache:     return "L1D";
      default:                      return "<bad>";
    }
}

} // namespace merlin::uarch
