/**
 * @file
 * Cycle-level out-of-order core for MRL-64.
 *
 * The pipeline models fetch (with branch prediction), decode to uops,
 * rename onto a physical register file with a free list, dispatch into
 * ROB / issue queue / load-store queue, out-of-order issue with
 * functional-unit constraints, store-to-load forwarding, in-order commit,
 * post-commit store drain into a write-back L1D, and full squash recovery
 * on branch mispredictions.
 *
 * Reliability hooks:
 *  - a Probe observes physical writes and committed reads of the three
 *    MeRLiN target structures (RF, SQ data field, L1D data array);
 *  - flip*Bit() methods let the injector corrupt live storage mid-run.
 *
 * Stage evaluation order within a cycle is commit -> writeback -> issue ->
 * rename/dispatch -> fetch, so dependent single-cycle ops execute on
 * back-to-back cycles, as in the gem5 O3 model.
 */

#ifndef MERLIN_UARCH_CORE_HH
#define MERLIN_UARCH_CORE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "isa/interp.hh"
#include "isa/program.hh"
#include "isa/uops.hh"
#include "uarch/branch.hh"
#include "uarch/cache.hh"
#include "uarch/config.hh"
#include "uarch/probe.hh"

namespace merlin::uarch
{

/** Timing statistics of one run. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instret = 0;
    std::uint64_t uopsRetired = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t squashes = 0;
    std::uint64_t loadsExecuted = 0;
    std::uint64_t storeForwards = 0;
    std::uint64_t l1dHits = 0;
    std::uint64_t l1dMisses = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instret) / cycles : 0.0;
    }

    bool operator==(const CoreStats &) const = default;
};

/**
 * Byte accounting of one snapshot capture or restore: how much state
 * was deep-copied versus referenced through shared COW chunks.  The
 * seed engine deep-copied total(); the COW substrate copies only
 * bytesCopied.
 */
struct SnapshotStats
{
    std::uint64_t bytesCopied = 0; ///< duplicated into private storage
    std::uint64_t bytesShared = 0; ///< referenced via shared COW chunks

    std::uint64_t total() const { return bytesCopied + bytesShared; }
};

/** The out-of-order core. */
class Core
{
  public:
    /**
     * Opaque, immutable checkpoint of the complete core state
     * (architectural + microarchitectural + memory hierarchy).
     * Capture shares the memory image and cache data arrays
     * copy-on-write, so both capture and copy are O(dirty state).
     * Cheap to copy (shared ownership); safe to restore from multiple
     * threads concurrently.
     */
    class Snapshot;

    Core(const isa::Program &prog, const CoreConfig &cfg,
         Probe *probe = nullptr);

    /**
     * Resume from @p snap instead of cycle 0.  Only the watchdog /
     * window knobs of @p cfg may differ from the snapshotted
     * configuration; structural parameters must match.  The restored
     * core never carries a probe.  @p stats, when given, receives the
     * restore's byte accounting; @p deep forces a full detach of all
     * COW state (the seed engine's deep-copy behaviour, kept for
     * benchmarking the substrate).
     */
    Core(const isa::Program &prog, const CoreConfig &cfg,
         const Snapshot &snap, SnapshotStats *stats = nullptr,
         bool deep = false);

    /**
     * Capture the full state of this core between ticks.  @p stats /
     * @p deep as on the restoring constructor.
     */
    Snapshot snapshot(SnapshotStats *stats = nullptr,
                      bool deep = false) const;

    /**
     * Deep state equality with the core stored in @p snap: memory and
     * cache data compare chunk-pointer-first, everything else
     * field-wise.  Probe-only bookkeeping (pending profiler reads) is
     * excluded — it never influences a probe-free run.  True means the
     * two cores are on identical future trajectories.
     */
    bool stateEquals(const Snapshot &snap) const;

    /** Advance one cycle; false once the run has terminated. */
    bool tick();

    /** Run to termination and return the architectural outcome. */
    isa::ArchResult run();

    bool finished() const { return finished_; }
    Cycle cycle() const { return cycle_; }
    const isa::ArchResult &result() const { return result_; }
    const CoreStats &stats() const { return stats_; }
    const CoreConfig &config() const { return cfg_; }

    // ---- fault-injection hooks (GeFIN-style bit flips) ----
    void flipRegisterFileBit(EntryIndex reg, unsigned bit);
    void flipStoreQueueBit(EntryIndex slot, unsigned bit);
    void flipL1dBit(EntryIndex word, unsigned bit);

    /** Entry counts of the injectable structures. */
    unsigned numRegisterFileEntries() const { return cfg_.numPhysIntRegs; }
    unsigned numStoreQueueEntries() const { return cfg_.sqEntries; }
    unsigned numL1dWords() const { return cfg_.l1d.totalWords(); }

    /**
     * Attach a raw physical-effect listener (the replay effect-trace
     * recorder).  Must be attached AFTER construction — the
     * constructor's initialisation writes are the pre-run state, not
     * replayable effects — and before the first tick().  Snapshots
     * never carry the sink (it belongs to the recording run only).
     */
    void setEffectSink(EffectSink *sink);

    // ---- architectural state extraction (window-end comparison) ----
    /** Committed value of architectural register @p arch. */
    std::uint64_t archRegValue(unsigned arch) const;

    /**
     * Memory as the program would observe it: backing memory with all
     * dirty cache lines and committed-but-undrained stores applied.
     */
    isa::SegmentedMemory archMemoryView() const;

  private:
    /** Memberwise copy; callers must run fixupAfterCopy() on the copy. */
    Core(const Core &) = default;

    /** Reject restoring from a default-constructed (empty) snapshot. */
    static const Core &requireState(const Snapshot &snap);

    /** Re-target internal pointers after a memberwise copy. */
    void fixupAfterCopy();

    /** Field-wise equality against @p o (see stateEquals(Snapshot)). */
    bool stateEquals(const Core &o) const;

    /** Bytes a memberwise copy duplicates (non-COW members). */
    std::uint64_t deepStateBytes() const;

    /** Bytes a memberwise copy shares through COW chunks. */
    std::uint64_t cowStateBytes() const;

    static constexpr std::uint16_t NO_PREG = 0xffff;

    struct PendingRead
    {
        Structure s;
        EntryIndex entry;
        Cycle cycle;
        std::uint8_t phase;

        bool operator==(const PendingRead &) const = default;
    };

    /**
     * Forwards L1D data-array events to the probe with phase context,
     * and raw masked events to the effect sink.
     */
    struct L1dSink : CacheEventSink
    {
        Core *core = nullptr;
        void onCacheWordWrite(EntryIndex word, Cycle cycle) override;
        void onCacheWordWritebackRead(EntryIndex word, Cycle cycle,
                                      Rip rip, Upc upc) override;
        void onCacheWordWriteMasked(EntryIndex word, std::uint8_t mask,
                                    Cycle cycle) override;
        void onCacheWordReadMasked(EntryIndex word, std::uint8_t mask,
                                   Cycle cycle) override;
    };
    friend struct L1dSink;

    /** Record a physical touch of a target structure, if recording. */
    void
    emitEffect(Structure s, EntryIndex entry, std::uint8_t mask,
               bool is_write)
    {
        if (esink_)
            esink_->onEffect(s, entry, cycle_, mask, is_write);
    }

    struct RobEntry
    {
        std::uint32_t gen = 0;
        SeqNum seq = 0;
        Rip rip = 0;
        Upc upc = 0;
        bool lastUop = true;
        isa::StaticUop su;

        std::uint16_t physDst = NO_PREG;
        std::uint16_t prevPhys = NO_PREG;
        std::uint16_t physSrc1 = NO_PREG;
        std::uint16_t physSrc2 = NO_PREG;

        bool done = false;
        bool inIq = false;
        isa::TrapKind trap = isa::TrapKind::None;
        std::uint64_t resultValue = 0;

        // Control flow.
        bool isCtrl = false;
        bool predTaken = false;
        bool actualTaken = false;
        Addr predTarget = 0;
        Addr actualTarget = 0;
        bool hasPredState = false;
        PredictionState predState;
        bool rasValid = false;
        Ras::Snapshot rasSnap{0, 0};

        // Memory.
        std::uint64_t storeSeq = 0;
        std::int32_t sqSlot = -1;
        bool isLoad = false;
        std::uint64_t loadOlderStoreSeq = 0; ///< youngest older store + 1

        // Output buffering (OUT commits architecturally).
        std::uint64_t outValue = 0;

        std::uint8_t nPending = 0;
        PendingRead pending[4];

        /**
         * Equality for the reconvergence check.  nPending / pending
         * are deliberately excluded: they exist only to feed a probe
         * at commit, injected cores never carry a probe, and the
         * profiled golden core records them while the probe-free
         * restored cores cannot — comparing them would make golden
         * checkpoints permanently unequal to any injected run.
         */
        bool
        operator==(const RobEntry &o) const
        {
            return gen == o.gen && seq == o.seq && rip == o.rip &&
                   upc == o.upc && lastUop == o.lastUop && su == o.su &&
                   physDst == o.physDst && prevPhys == o.prevPhys &&
                   physSrc1 == o.physSrc1 && physSrc2 == o.physSrc2 &&
                   done == o.done && inIq == o.inIq && trap == o.trap &&
                   resultValue == o.resultValue && isCtrl == o.isCtrl &&
                   predTaken == o.predTaken &&
                   actualTaken == o.actualTaken &&
                   predTarget == o.predTarget &&
                   actualTarget == o.actualTarget &&
                   hasPredState == o.hasPredState &&
                   predState == o.predState && rasValid == o.rasValid &&
                   rasSnap == o.rasSnap && storeSeq == o.storeSeq &&
                   sqSlot == o.sqSlot && isLoad == o.isLoad &&
                   loadOlderStoreSeq == o.loadOlderStoreSeq &&
                   outValue == o.outValue;
        }
    };

    struct SqEntry
    {
        bool valid = false;
        bool addrReady = false;
        bool dataReady = false;
        bool committed = false;
        Addr addr = 0;
        std::uint8_t size = 0;
        std::uint64_t storeSeq = 0;
        std::uint32_t robIdx = 0;
        SeqNum seqNum = 0;
        Rip rip = 0;
        Upc upc = 0;

        bool operator==(const SqEntry &) const = default;
    };

    struct FetchedUop
    {
        isa::StaticUop su;
        Rip rip = 0;
        Upc upc = 0;
        bool lastUop = true;
        Cycle readyAt = 0;
        isa::TrapKind fetchTrap = isa::TrapKind::None;
        // Prediction attached to the control uop of the macro.
        bool isCtrl = false;
        bool predTaken = false;
        Addr predTarget = 0;
        bool hasPredState = false;
        PredictionState predState;
        bool rasValid = false;
        Ras::Snapshot rasSnap{0, 0};

        bool operator==(const FetchedUop &) const = default;
    };

    struct Completion
    {
        Cycle cycle;
        SeqNum seq;
        std::uint32_t robIdx;
        std::uint32_t gen;
        bool
        operator>(const Completion &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
        }

        bool operator==(const Completion &) const = default;
    };

    // Stages.
    void stageCommit();
    void stageDrainStores();
    void stageWriteback();
    void stageIssue();
    void stageRename();
    void stageFetch();

    // Helpers.
    RobEntry &robAt(SeqNum seq) { return rob_[seq % cfg_.robEntries]; }
    const RobEntry &robAt(SeqNum seq) const
    {
        return rob_[seq % cfg_.robEntries];
    }
    bool robFull() const { return robTailSeq_ - robHeadSeq_ >= cfg_.robEntries; }
    bool robEmpty() const { return robTailSeq_ == robHeadSeq_; }

    void executeUop(RobEntry &e);
    bool loadBlocked(const RobEntry &e, Addr addr, unsigned size,
                     bool &can_forward, std::uint64_t &fwd_value,
                     std::uint32_t &fwd_slot);
    void scheduleCompletion(RobEntry &e, Cycle when);
    void squashAfter(SeqNum branch_seq, Addr redirect_to);
    void terminate(isa::TerminateReason reason, int exit_code);
    void raiseTrapAtCommit(RobEntry &e);
    void addPendingRead(RobEntry &e, Structure s, EntryIndex entry,
                        Cycle cycle, std::uint8_t phase);
    std::uint64_t readPhysReg(RobEntry &e, std::uint16_t preg);

    CoreConfig cfg_;
    Probe *probe_;
    EffectSink *esink_ = nullptr;

    // Memory system.
    isa::SegmentedMemory mem_;
    Cache l2_;
    Cache l1i_;
    Cache l1d_;

    // Branch prediction.
    TournamentPredictor tournament_;
    Btb btb_;
    Ras ras_;

    // Register machinery.
    std::vector<std::uint64_t> prf_;
    std::vector<std::uint8_t> prfReady_;
    std::vector<std::uint16_t> freeList_;
    std::uint16_t renameMap_[isa::NUM_RENAMEABLE_REGS];
    std::uint16_t commitMap_[isa::NUM_RENAMEABLE_REGS];

    // Window.
    std::vector<RobEntry> rob_;
    SeqNum robHeadSeq_ = 0;
    SeqNum robTailSeq_ = 0;
    std::vector<std::uint32_t> iq_; ///< rob indices, program order
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        completions_;

    // LSQ.
    std::vector<SqEntry> sq_;
    std::vector<std::uint64_t> sqData_; ///< persistent data-field storage
    std::uint64_t sqNextSeq_ = 0;
    std::uint64_t sqHeadSeq_ = 0;
    unsigned lqOccupancy_ = 0;

    // Frontend.
    Addr fetchPc_;
    Cycle fetchResumeCycle_ = 0;
    bool fetchHalted_ = false; ///< stop fetching until redirect
    std::deque<FetchedUop> uopQueue_;

    // Execution resources.
    std::vector<Cycle> divBusyUntil_;

    // Probe plumbing for L1D data-array events.
    L1dSink l1dSink_;
    std::uint8_t l1dWbReadPhase_ = phase::L1dIssueWbRead;
    std::uint8_t l1dWritePhase_ = phase::L1dIssueWrite;
    SeqNum l1dCtxSeq_ = 0;

    // Run state.
    Cycle cycle_ = 0;
    Cycle lastCommitCycle_ = 0;
    SeqNum nextSeq_ = 0;
    bool finished_ = false;
    isa::ArchResult result_;
    CoreStats stats_;
};

class Core::Snapshot
{
  public:
    Snapshot() = default;

    /** Cycle at which the state was captured. */
    Cycle cycle() const { return cycle_; }
    bool valid() const { return state_ != nullptr; }

  private:
    friend class Core;
    std::shared_ptr<const Core> state_;
    Cycle cycle_ = 0;
};

} // namespace merlin::uarch

#endif // MERLIN_UARCH_CORE_HH
