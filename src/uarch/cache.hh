/**
 * @file
 * Set-associative write-back cache with a real data array.
 *
 * Unlike pure-timing models, every level stores actual bytes so that an
 * injected bit flip lives in the array, is forwarded to loads, travels
 * down on write-backs and comes back on refills — the physical behaviour
 * MeRLiN's L1D campaigns rely on.
 *
 * Timing model: functional-move/timing-charge.  An access moves lines
 * synchronously and returns the accumulated latency; the core schedules
 * the consumer's completion that many cycles later.  This keeps the
 * machine deterministic and fast while preserving miss/hit shapes.
 *
 * The data array is copy-on-write (base::CowBytes): a memberwise cache
 * copy (core snapshot) shares the array chunk-wise and a restored core
 * detaches only the lines it actually writes.  Tag/LRU metadata stays
 * a plain vector — it mutates on almost every access, so COW would
 * thrash there.
 */

#ifndef MERLIN_UARCH_CACHE_HH
#define MERLIN_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "base/cow.hh"
#include "base/types.hh"
#include "isa/memory.hh"
#include "uarch/config.hh"

namespace merlin::uarch
{

/** Receives data-array events from the (single) profiled cache level. */
class CacheEventSink
{
  public:
    virtual ~CacheEventSink() = default;
    /** An 8-byte word of the data array was overwritten. */
    virtual void onCacheWordWrite(EntryIndex word, Cycle cycle) = 0;
    /**
     * A dirty line left the array (write-back read); attributed to the
     * access that caused the eviction.
     */
    virtual void onCacheWordWritebackRead(EntryIndex word, Cycle cycle,
                                          Rip rip, Upc upc) = 0;

    /**
     * Byte-granular physical events for the replay effect trace; the
     * defaults ignore them so probe-only sinks are unaffected.  Unlike
     * onCacheWordWrite (first word only, profiler semantics), the
     * masked write fires once per touched word with the exact bytes
     * overwritten; the masked read fires for every word physically
     * read out of the array (write-back victims).
     */
    virtual void
    onCacheWordWriteMasked(EntryIndex /*word*/, std::uint8_t /*mask*/,
                           Cycle /*cycle*/)
    {}

    virtual void
    onCacheWordReadMasked(EntryIndex /*word*/, std::uint8_t /*mask*/,
                          Cycle /*cycle*/)
    {}
};

/** One level of the hierarchy; lowest level backs onto SegmentedMemory. */
class Cache
{
  public:
    /**
     * Exactly one of @p lower / @p mem must be non-null.
     * @p chunk_bytes is the data-array COW granularity (0 = default);
     * it is rounded up to at least one line.
     */
    Cache(std::string name, const CacheConfig &cfg, Cache *lower,
          isa::SegmentedMemory *mem, std::uint32_t chunk_bytes = 0);

    struct AccessResult
    {
        std::uint32_t latency = 0;
        std::uint32_t set = 0;
        std::uint32_t way = 0;
        bool hit = false;
    };

    /**
     * Ensure the line containing @p addr is resident; returns where it
     * lives and the accumulated latency.  @p is_write marks the line
     * dirty.  @p rip / @p upc tag any write-back this access triggers.
     */
    AccessResult access(Addr addr, bool is_write, Cycle now, Rip rip,
                        Upc upc);

    /** Read up to 8 bytes from a resident line (no alignment checks). */
    std::uint64_t readBytes(std::uint32_t set, std::uint32_t way,
                            std::uint32_t offset, unsigned size) const;

    /** Write up to 8 bytes into a resident line. */
    void writeBytes(std::uint32_t set, std::uint32_t way,
                    std::uint32_t offset, unsigned size, std::uint64_t value,
                    Cycle now);

    /** Flip one bit of the data array (fault injection). */
    void flipBit(EntryIndex word, unsigned bit);

    /** Global 8-byte-word index of (set, way, byte offset). */
    EntryIndex
    wordIndex(std::uint32_t set, std::uint32_t way,
              std::uint32_t offset) const
    {
        return (set * cfg_.ways + way) * cfg_.wordsPerLine() + offset / 8;
    }

    /** Apply every dirty line onto @p mem (architectural memory view). */
    void applyDirtyLines(isa::SegmentedMemory &mem) const;

    /** Attach the profiler sink (L1D only). */
    void setEventSink(CacheEventSink *sink) { sink_ = sink; }

    /**
     * Re-target the hierarchy pointers after a memberwise copy (core
     * snapshot/restore).  Exactly one of @p lower / @p mem must be
     * non-null; any event sink is dropped.
     */
    void repoint(Cache *lower, isa::SegmentedMemory *mem);

    /**
     * Full state equality with @p o (same geometry assumed): tags,
     * LRU, dirty bits, access counters, and the data array — shared
     * data chunks compare by pointer identity.
     */
    bool stateEquals(const Cache &o) const;

    /** Data-array bytes (COW-shared by a memberwise copy). */
    std::uint64_t dataBytes() const { return data_.size(); }

    /** Metadata bytes deep-copied by a memberwise copy. */
    std::uint64_t metaBytes() const;

    /** Data chunks physically shared with @p o. */
    std::size_t sharedDataChunksWith(const Cache &o) const
    {
        return data_.sharedChunksWith(o.data_);
    }

    /** Privatize the whole data array (emulates the old deep copy). */
    void detachData() { data_.detachAll(); }

    const CacheConfig &config() const { return cfg_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;

        bool
        operator==(const Line &o) const
        {
            return valid == o.valid && dirty == o.dirty && tag == o.tag &&
                   lruStamp == o.lruStamp;
        }
    };

    Addr lineAddr(Addr addr) const { return addr & ~Addr(cfg_.lineSize - 1); }
    std::uint32_t setOf(Addr addr) const
    {
        return (addr / cfg_.lineSize) % cfg_.numSets();
    }
    Addr tagOf(Addr addr) const { return addr / cfg_.lineSize / cfg_.numSets(); }

    std::size_t
    lineOffset(std::uint32_t set, std::uint32_t way) const
    {
        return (std::size_t(set) * cfg_.ways + way) * cfg_.lineSize;
    }

    /** Read-only view of a whole resident line. */
    const std::uint8_t *lineData(std::uint32_t set, std::uint32_t way) const;
    /** Writable view of a whole resident line (detaches its chunk). */
    std::uint8_t *lineDataMut(std::uint32_t set, std::uint32_t way);

    /** Recursive line read from below; returns latency. */
    std::uint32_t readLineFromBelow(Addr line_addr, std::uint8_t *out,
                                    Cycle now, Rip rip, Upc upc);
    /** Recursive line write-back into the level below. */
    std::uint32_t writeLineBelow(Addr line_addr, const std::uint8_t *data,
                                 Cycle now, Rip rip, Upc upc);

    std::string name_;
    CacheConfig cfg_;
    Cache *lower_;
    isa::SegmentedMemory *mem_;
    CacheEventSink *sink_ = nullptr;

    std::vector<Line> lines_;  ///< sets x ways
    base::CowBytes data_;      ///< sets x ways x lineSize, COW-chunked
    std::uint64_t lruCounter_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
    unsigned memLatency_ = 80;

  public:
    void setMemLatency(unsigned lat) { memLatency_ = lat; }
};

} // namespace merlin::uarch

#endif // MERLIN_UARCH_CACHE_HH
