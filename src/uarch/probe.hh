/**
 * @file
 * Observer interface between the core and reliability tooling.
 *
 * The ACE-like profiler (profile/) attaches a Probe to the golden run.
 * Injection runs attach nothing, so the hot path stays probe-free.
 *
 * Event semantics follow the paper's Figure 3:
 *  - write events are *physical*: they fire whenever storage is
 *    overwritten, including by wrong-path uops and cache fills;
 *  - read events are *committed*: the core buffers each uop's reads and
 *    delivers them only if the uop commits, discarding them on squash.
 *    Cache write-backs are the exception — the data has already left the
 *    array, so they are delivered immediately with the RIP/uPC of the
 *    access that caused the eviction.
 */

#ifndef MERLIN_UARCH_PROBE_HH
#define MERLIN_UARCH_PROBE_HH

#include "base/types.hh"

namespace merlin::uarch
{

/** Structures MeRLiN targets (the paper's RF, SQ data field, L1D data). */
enum class Structure : std::uint8_t
{
    RegisterFile, ///< physical integer register file (64-bit entries)
    StoreQueue,   ///< store queue data field (8-byte entries)
    L1DCache,     ///< L1 data cache data array (8-byte word entries)
};

const char *structureName(Structure s);

/**
 * Intra-cycle ordering of storage events.  An injected flip lands at the
 * very start of a cycle; stages then run drain -> writeback -> issue, so
 * two events in the same cycle are physically ordered by these phase
 * numbers.  The profiler sorts per-entry events by (cycle, phase).
 */
namespace phase
{
constexpr std::uint8_t Init = 0;        ///< initial state (cycle 0)
constexpr std::uint8_t SqDrainRead = 1; ///< drain reads the SQ data field
constexpr std::uint8_t L1dDrainWbRead = 2;
constexpr std::uint8_t L1dDrainWrite = 3;
constexpr std::uint8_t RegWrite = 4;    ///< writeback writes the PRF
constexpr std::uint8_t RegRead = 5;     ///< issue reads operands
constexpr std::uint8_t SqWrite = 6;     ///< store execute fills its slot
constexpr std::uint8_t SqForwardRead = 7;
constexpr std::uint8_t L1dIssueWbRead = 8;
constexpr std::uint8_t L1dIssueWrite = 9; ///< fill during a load miss
constexpr std::uint8_t L1dLoadRead = 10;
} // namespace phase

/**
 * Raw physical effect listener for the replay fast path (replay/).
 *
 * Unlike Probe, which follows the paper's committed-read semantics for
 * ACE analysis, an EffectSink sees every PHYSICAL touch of a target
 * structure's storage the moment it happens — wrong-path reads,
 * scheduling reads and squashed writes included.  That conservatism is
 * what makes the recorded trace a sound divergence detector: a read
 * may be over-reported (costing only a handoff into full simulation),
 * but a write is reported exactly when the bytes are overwritten with
 * data independent of their prior content.
 *
 * @p byte_mask selects the touched bytes of the 8-byte entry (bit i =
 * byte i).  Events for one entry arrive in nondecreasing cycle order,
 * and within a cycle in physical stage order.
 */
class EffectSink
{
  public:
    virtual ~EffectSink() = default;

    virtual void onEffect(Structure s, EntryIndex entry, Cycle cycle,
                          std::uint8_t byte_mask, bool is_write) = 0;
};

/** Core event listener; default implementations ignore everything. */
class Probe
{
  public:
    virtual ~Probe() = default;

    /** Storage written: entry @p entry of @p s at @p cycle. */
    virtual void
    onWrite(Structure /*s*/, EntryIndex /*entry*/, Cycle /*cycle*/,
            std::uint8_t /*phase*/)
    {}

    /**
     * Storage read by a uop that committed.  @p read_cycle is when the
     * bits were actually consumed (issue/drain/write-back time), not the
     * commit time.  @p seq is the reader's commit sequence number (used
     * by the Relyzer control-path heuristic).
     */
    virtual void
    onCommittedRead(Structure /*s*/, EntryIndex /*entry*/,
                    Cycle /*read_cycle*/, std::uint8_t /*phase*/,
                    Rip /*rip*/, Upc /*upc*/, SeqNum /*seq*/)
    {}

    /** A macro instruction committed (Relyzer path profiling). */
    virtual void
    onCommitInstruction(Rip /*rip*/, SeqNum /*seq*/)
    {}

    /** A committed conditional branch resolved @p taken. */
    virtual void
    onCommitBranch(Rip /*rip*/, bool /*taken*/, SeqNum /*seq*/)
    {}
};

} // namespace merlin::uarch

#endif // MERLIN_UARCH_PROBE_HH
