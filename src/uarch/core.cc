#include "uarch/core.hh"

#include <algorithm>
#include <iterator>
#include <tuple>
#include <vector>

#include "base/bits.hh"
#include "base/logging.hh"
#include "isa/exec.hh"

namespace merlin::uarch
{

using isa::Opcode;
using isa::StaticUop;
using isa::TrapKind;
using isa::UopKind;

Core::Core(const isa::Program &prog, const CoreConfig &cfg, Probe *probe)
    : cfg_(cfg),
      probe_(probe),
      mem_(prog.buildMemory(cfg.memChunkBytes)),
      l2_("l2", cfg.l2, nullptr, &mem_, cfg.memChunkBytes),
      l1i_("l1i", cfg.l1i, &l2_, nullptr, cfg.memChunkBytes),
      l1d_("l1d", cfg.l1d, &l2_, nullptr, cfg.memChunkBytes),
      tournament_(cfg),
      btb_(cfg.btbEntries),
      ras_(cfg.rasEntries),
      fetchPc_(prog.entry)
{
    MERLIN_ASSERT(cfg_.numPhysIntRegs > isa::NUM_RENAMEABLE_REGS,
                  "need more physical than architectural registers");
    l2_.setMemLatency(cfg_.memLatency);

    prf_.assign(cfg_.numPhysIntRegs, 0);
    prfReady_.assign(cfg_.numPhysIntRegs, 1);
    for (unsigned i = 0; i < isa::NUM_RENAMEABLE_REGS; ++i) {
        renameMap_[i] = static_cast<std::uint16_t>(i);
        commitMap_[i] = static_cast<std::uint16_t>(i);
    }
    prf_[isa::REG_SP] = isa::layout::STACK_TOP;
    // Initial architectural state is a physical write at cycle 0.
    if (probe_) {
        for (unsigned i = 0; i < isa::NUM_RENAMEABLE_REGS; ++i)
            probe_->onWrite(Structure::RegisterFile, i, 0, phase::Init);
        l1dSink_.core = this;
        l1d_.setEventSink(&l1dSink_);
    }
    freeList_.reserve(cfg_.numPhysIntRegs);
    for (unsigned p = cfg_.numPhysIntRegs;
         p-- > isa::NUM_RENAMEABLE_REGS;) {
        freeList_.push_back(static_cast<std::uint16_t>(p));
    }

    rob_.assign(cfg_.robEntries, RobEntry{});
    iq_.reserve(cfg_.iqEntries);
    sq_.assign(cfg_.sqEntries, SqEntry{});
    sqData_.assign(cfg_.sqEntries, 0);
    divBusyUntil_.assign(cfg_.complexCount, 0);
}

// ---------------------------------------------------- snapshot / restore

void
Core::fixupAfterCopy()
{
    // Restored cores never profile: the probe belongs to the golden
    // run, and so does the effect-trace sink.
    probe_ = nullptr;
    esink_ = nullptr;
    l2_.repoint(nullptr, &mem_);
    l1i_.repoint(&l2_, nullptr);
    l1d_.repoint(&l2_, nullptr);
    l1dSink_.core = this;
}

std::uint64_t
Core::deepStateBytes() const
{
    // Everything a memberwise copy duplicates byte-for-byte: the
    // register machinery, the window, the LSQ, the frontend, predictor
    // tables, cache tag/LRU metadata, and the COW chunk-pointer tables
    // themselves.
    std::uint64_t n = 0;
    n += prf_.size() * sizeof(std::uint64_t);
    n += prfReady_.size();
    n += freeList_.size() * sizeof(std::uint16_t);
    n += sizeof(renameMap_) + sizeof(commitMap_);
    n += rob_.size() * sizeof(RobEntry);
    n += iq_.size() * sizeof(std::uint32_t);
    n += completions_.size() * sizeof(Completion);
    n += sq_.size() * sizeof(SqEntry);
    n += sqData_.size() * sizeof(std::uint64_t);
    n += uopQueue_.size() * sizeof(FetchedUop);
    n += divBusyUntil_.size() * sizeof(Cycle);
    n += tournament_.stateBytes() + btb_.stateBytes() + ras_.stateBytes();
    n += l2_.metaBytes() + l1i_.metaBytes() + l1d_.metaBytes();
    n += (mem_.contentBytes() / mem_.chunkBytes() + 4) * sizeof(void *);
    n += result_.output.size() +
         result_.traps.size() * sizeof(isa::TrapEvent);
    return n;
}

std::uint64_t
Core::cowStateBytes() const
{
    return mem_.contentBytes() + l2_.dataBytes() + l1i_.dataBytes() +
           l1d_.dataBytes();
}

Core::Snapshot
Core::snapshot(SnapshotStats *stats, bool deep) const
{
    auto copy = std::shared_ptr<Core>(new Core(*this));
    copy->fixupAfterCopy();
    if (deep) {
        copy->mem_.detachAll();
        copy->l2_.detachData();
        copy->l1i_.detachData();
        copy->l1d_.detachData();
    }
    if (stats) {
        stats->bytesCopied = deepStateBytes() + (deep ? cowStateBytes() : 0);
        stats->bytesShared = deep ? 0 : cowStateBytes();
    }
    Snapshot s;
    s.state_ = std::move(copy);
    s.cycle_ = cycle_;
    return s;
}

const Core &
Core::requireState(const Snapshot &snap)
{
    MERLIN_ASSERT(snap.valid(), "restore from an empty snapshot");
    return *snap.state_;
}

Core::Core(const isa::Program &prog, const CoreConfig &cfg,
           const Snapshot &snap, SnapshotStats *stats, bool deep)
    : Core(requireState(snap))
{
    // The program's text/data are embedded in the snapshot's memory;
    // @p prog documents provenance but cannot be cross-checked cheaply.
    (void)prog;
    fixupAfterCopy();
    MERLIN_ASSERT(cfg.numPhysIntRegs == cfg_.numPhysIntRegs &&
                      cfg.sqEntries == cfg_.sqEntries &&
                      cfg.lqEntries == cfg_.lqEntries &&
                      cfg.robEntries == cfg_.robEntries &&
                      cfg.iqEntries == cfg_.iqEntries &&
                      cfg.l1d.sizeBytes == cfg_.l1d.sizeBytes &&
                      cfg.l1i.sizeBytes == cfg_.l1i.sizeBytes &&
                      cfg.l2.sizeBytes == cfg_.l2.sizeBytes &&
                      cfg.memChunkBytes == cfg_.memChunkBytes,
                  "snapshot restore with mismatched structural config");
    // Run-limit knobs are the only configuration allowed to change
    // between capture and restore (the injector tightens maxCycles).
    cfg_.maxCycles = cfg.maxCycles;
    cfg_.deadlockCycles = cfg.deadlockCycles;
    cfg_.instructionWindowEnd = cfg.instructionWindowEnd;
    if (deep) {
        mem_.detachAll();
        l2_.detachData();
        l1i_.detachData();
        l1d_.detachData();
    }
    if (stats) {
        stats->bytesCopied = deepStateBytes() + (deep ? cowStateBytes() : 0);
        stats->bytesShared = deep ? 0 : cowStateBytes();
    }
}

// ------------------------------------------------------ state equality

bool
Core::stateEquals(const Snapshot &snap) const
{
    return stateEquals(requireState(snap));
}

bool
Core::stateEquals(const Core &o) const
{
    // Cheapest and most-divergence-prone state first, so runs that
    // have not reconverged bail out early; the big COW arrays compare
    // last and mostly by chunk identity.
    if (cycle_ != o.cycle_ || lastCommitCycle_ != o.lastCommitCycle_ ||
        nextSeq_ != o.nextSeq_ || finished_ != o.finished_ ||
        robHeadSeq_ != o.robHeadSeq_ || robTailSeq_ != o.robTailSeq_ ||
        sqNextSeq_ != o.sqNextSeq_ || sqHeadSeq_ != o.sqHeadSeq_ ||
        lqOccupancy_ != o.lqOccupancy_ || fetchPc_ != o.fetchPc_ ||
        fetchResumeCycle_ != o.fetchResumeCycle_ ||
        fetchHalted_ != o.fetchHalted_ ||
        l1dWbReadPhase_ != o.l1dWbReadPhase_ ||
        l1dWritePhase_ != o.l1dWritePhase_ ||
        l1dCtxSeq_ != o.l1dCtxSeq_) {
        return false;
    }
    if (!(stats_ == o.stats_) || !(result_ == o.result_))
        return false;
    if (prf_ != o.prf_ || prfReady_ != o.prfReady_ ||
        freeList_ != o.freeList_ ||
        !std::equal(std::begin(renameMap_), std::end(renameMap_),
                    std::begin(o.renameMap_)) ||
        !std::equal(std::begin(commitMap_), std::end(commitMap_),
                    std::begin(o.commitMap_))) {
        return false;
    }
    if (sqData_ != o.sqData_ || sq_ != o.sq_)
        return false;
    if (rob_ != o.rob_ || iq_ != o.iq_ || uopQueue_ != o.uopQueue_ ||
        divBusyUntil_ != o.divBusyUntil_) {
        return false;
    }
    // In-flight completions: the heap's internal layout depends on
    // insertion history, so compare the two queues as multisets.
    if (completions_.size() != o.completions_.size())
        return false;
    {
        const auto drain = [](auto q) {
            std::vector<Completion> v;
            v.reserve(q.size());
            while (!q.empty()) {
                v.push_back(q.top());
                q.pop();
            }
            // top() ordering ties on (cycle, seq); break them fully.
            std::sort(v.begin(), v.end(),
                      [](const Completion &a, const Completion &b) {
                          return std::tie(a.cycle, a.seq, a.robIdx,
                                          a.gen) <
                                 std::tie(b.cycle, b.seq, b.robIdx,
                                          b.gen);
                      });
            return v;
        };
        if (drain(completions_) != drain(o.completions_))
            return false;
    }
    if (!tournament_.stateEquals(o.tournament_) ||
        !btb_.stateEquals(o.btb_) || !ras_.stateEquals(o.ras_)) {
        return false;
    }
    return l1d_.stateEquals(o.l1d_) && l1i_.stateEquals(o.l1i_) &&
           l2_.stateEquals(o.l2_) && mem_.contentEquals(o.mem_);
}

// ---------------------------------------------------------------- faults

void
Core::flipRegisterFileBit(EntryIndex reg, unsigned bit)
{
    MERLIN_ASSERT(reg < prf_.size() && bit < 64, "RF flip out of range");
    prf_[reg] ^= 1ULL << bit;
}

void
Core::flipStoreQueueBit(EntryIndex slot, unsigned bit)
{
    MERLIN_ASSERT(slot < sqData_.size() && bit < 64,
                  "SQ flip out of range");
    sqData_[slot] ^= 1ULL << bit;
}

void
Core::flipL1dBit(EntryIndex word, unsigned bit)
{
    l1d_.flipBit(word, bit);
}

// ----------------------------------------------------------- arch state

std::uint64_t
Core::archRegValue(unsigned arch) const
{
    MERLIN_ASSERT(arch < isa::NUM_RENAMEABLE_REGS, "bad arch reg");
    return prf_[commitMap_[arch]];
}

isa::SegmentedMemory
Core::archMemoryView() const
{
    isa::SegmentedMemory view = mem_;
    l2_.applyDirtyLines(view);
    l1d_.applyDirtyLines(view);
    // Committed but undrained stores are architecturally performed.
    for (std::uint64_t s = sqHeadSeq_; s < sqNextSeq_; ++s) {
        const SqEntry &q = sq_[s % cfg_.sqEntries];
        if (q.valid && q.committed) {
            view.write(q.addr, q.size,
                       sqData_[s % cfg_.sqEntries]);
        }
    }
    return view;
}

// -------------------------------------------------------------- helpers

void
Core::addPendingRead(RobEntry &e, Structure s, EntryIndex entry,
                     Cycle cycle, std::uint8_t ph)
{
    if (!probe_)
        return;
    MERLIN_ASSERT(e.nPending < 4, "pending read overflow");
    e.pending[e.nPending++] = PendingRead{s, entry, cycle, ph};
}

std::uint64_t
Core::readPhysReg(RobEntry &e, std::uint16_t preg)
{
    addPendingRead(e, Structure::RegisterFile, preg, cycle_,
                   phase::RegRead);
    emitEffect(Structure::RegisterFile, preg, 0xff, false);
    return prf_[preg];
}

void
Core::setEffectSink(EffectSink *sink)
{
    esink_ = sink;
    if (esink_) {
        l1dSink_.core = this;
        l1d_.setEventSink(&l1dSink_);
    }
}

void
Core::L1dSink::onCacheWordWrite(EntryIndex word, Cycle cycle)
{
    if (core->probe_) {
        core->probe_->onWrite(Structure::L1DCache, word, cycle,
                              core->l1dWritePhase_);
    }
}

void
Core::L1dSink::onCacheWordWritebackRead(EntryIndex word, Cycle cycle,
                                        Rip rip, Upc upc)
{
    if (core->probe_) {
        core->probe_->onCommittedRead(Structure::L1DCache, word, cycle,
                                      core->l1dWbReadPhase_, rip, upc,
                                      core->l1dCtxSeq_);
    }
}

void
Core::L1dSink::onCacheWordWriteMasked(EntryIndex word, std::uint8_t mask,
                                      Cycle /*cycle*/)
{
    core->emitEffect(Structure::L1DCache, word, mask, true);
}

void
Core::L1dSink::onCacheWordReadMasked(EntryIndex word, std::uint8_t mask,
                                     Cycle /*cycle*/)
{
    core->emitEffect(Structure::L1DCache, word, mask, false);
}

void
Core::scheduleCompletion(RobEntry &e, Cycle when)
{
    completions_.push(Completion{
        when, e.seq, static_cast<std::uint32_t>(e.seq % cfg_.robEntries),
        e.gen});
}

void
Core::terminate(isa::TerminateReason reason, int exit_code)
{
    result_.reason = reason;
    result_.exitCode = exit_code;
    result_.instret = stats_.instret;
    result_.uopsRetired = stats_.uopsRetired;
    finished_ = true;
}

void
Core::raiseTrapAtCommit(RobEntry &e)
{
    result_.traps.push_back(isa::TrapEvent{e.trap, e.rip});
    terminate(isa::TerminateReason::Trapped,
              128 + static_cast<int>(e.trap));
}

// ---------------------------------------------------------------- fetch

void
Core::stageFetch()
{
    if (fetchHalted_ || cycle_ < fetchResumeCycle_)
        return;
    if (uopQueue_.size() >= 32)
        return;

    for (unsigned fetched = 0; fetched < cfg_.fetchWidth; ++fetched) {
        // Permission / mapping check through functional memory.
        std::uint64_t unused = 0;
        if (mem_.fetch(fetchPc_, unused) != TrapKind::None) {
            FetchedUop f;
            f.rip = fetchPc_;
            f.fetchTrap = TrapKind::PcOutOfText;
            f.readyAt = cycle_ + cfg_.frontendDepth;
            uopQueue_.push_back(f);
            fetchHalted_ = true;
            return;
        }

        Cache::AccessResult ar =
            l1i_.access(fetchPc_, false, cycle_, fetchPc_, 0);
        if (!ar.hit) {
            // Line is now resident; retry once the fill completes.
            fetchResumeCycle_ = cycle_ + ar.latency;
            return;
        }
        const std::uint64_t raw = l1i_.readBytes(
            ar.set, ar.way,
            static_cast<std::uint32_t>(fetchPc_ & (cfg_.l1i.lineSize - 1)),
            8);

        auto decoded = isa::decode(raw);
        if (!decoded) {
            FetchedUop f;
            f.rip = fetchPc_;
            f.fetchTrap = TrapKind::IllegalInstruction;
            f.readyAt = cycle_ + cfg_.frontendDepth;
            uopQueue_.push_back(f);
            fetchHalted_ = true;
            return;
        }
        const isa::Instruction insn = *decoded;

        StaticUop uops[isa::MAX_UOPS_PER_MACRO];
        const unsigned n = isa::expand(insn, fetchPc_, uops);
        const Addr fall = fetchPc_ + isa::INSN_BYTES;

        // Branch prediction for control-flow macros (control uop is
        // always the last uop of its macro).
        bool is_ctrl = isa::isControlFlow(insn.op);
        bool pred_taken = false;
        Addr pred_target = fall;
        bool has_pred_state = false;
        PredictionState pred_state;
        bool ras_valid = false;
        Ras::Snapshot ras_snap{0, 0};

        if (is_ctrl) {
            const StaticUop &ctrl = uops[n - 1];
            if (isa::isCondBranch(insn.op)) {
                pred_state = tournament_.predict(fetchPc_);
                has_pred_state = true;
                pred_taken = pred_state.taken;
                pred_target = pred_taken
                                  ? static_cast<std::uint32_t>(insn.imm)
                                  : fall;
            } else if (insn.op == Opcode::JMP ||
                       insn.op == Opcode::CALL) {
                pred_taken = true;
                pred_target = static_cast<std::uint32_t>(insn.imm);
            } else {
                // Indirect: JR or CALLR.
                pred_taken = true;
                if (ctrl.isReturn) {
                    ras_snap = ras_.snapshot();
                    ras_valid = true;
                    pred_target = ras_.pop();
                } else {
                    auto t = btb_.lookup(fetchPc_);
                    pred_target = t ? *t : fall;
                }
            }
            if (ctrl.isCall) {
                if (!ras_valid) {
                    ras_snap = ras_.snapshot();
                    ras_valid = true;
                }
                ras_.push(fall);
            }
        }

        for (unsigned i = 0; i < n; ++i) {
            FetchedUop f;
            f.su = uops[i];
            f.rip = fetchPc_;
            f.upc = static_cast<Upc>(i);
            f.lastUop = (i == n - 1);
            f.readyAt = cycle_ + cfg_.frontendDepth;
            if (is_ctrl && i == n - 1) {
                f.isCtrl = true;
                f.predTaken = pred_taken;
                f.predTarget = pred_target;
                f.hasPredState = has_pred_state;
                f.predState = pred_state;
                f.rasValid = ras_valid;
                f.rasSnap = ras_snap;
            }
            uopQueue_.push_back(f);
        }

        if (insn.op == Opcode::HALT) {
            fetchHalted_ = true;
            return;
        }
        fetchPc_ = is_ctrl ? pred_target : fall;
        if (is_ctrl && pred_target != fall)
            return; // a predicted-taken branch ends the fetch group
    }
}

// --------------------------------------------------------------- rename

void
Core::stageRename()
{
    for (unsigned n = 0; n < cfg_.renameWidth && !uopQueue_.empty(); ++n) {
        FetchedUop &f = uopQueue_.front();
        if (f.readyAt > cycle_ || robFull())
            return;

        const bool is_store = f.su.kind == UopKind::Store;
        const bool is_load = f.su.kind == UopKind::Load;
        const bool needs_iq = f.fetchTrap == TrapKind::None &&
                              f.su.kind != UopKind::Nop &&
                              f.su.kind != UopKind::Halt;

        if (needs_iq && iq_.size() >= cfg_.iqEntries)
            return;
        if (is_store && sqNextSeq_ - sqHeadSeq_ >= cfg_.sqEntries)
            return;
        if (is_load && lqOccupancy_ >= cfg_.lqEntries)
            return;
        if (f.su.dst != isa::REG_NONE && freeList_.empty())
            return;

        const SeqNum seq = robTailSeq_++;
        RobEntry &e = robAt(seq);
        const std::uint32_t gen = e.gen + 1;
        e = RobEntry{};
        e.gen = gen;
        e.seq = seq;
        e.rip = f.rip;
        e.upc = f.upc;
        e.lastUop = f.lastUop;
        e.su = f.su;
        e.trap = f.fetchTrap;
        e.isCtrl = f.isCtrl;
        e.predTaken = f.predTaken;
        e.predTarget = f.predTarget;
        e.hasPredState = f.hasPredState;
        e.predState = f.predState;
        e.rasValid = f.rasValid;
        e.rasSnap = f.rasSnap;

        if (f.su.src1 != isa::REG_NONE)
            e.physSrc1 = renameMap_[f.su.src1];
        if (f.su.src2 != isa::REG_NONE)
            e.physSrc2 = renameMap_[f.su.src2];
        if (f.su.dst != isa::REG_NONE) {
            e.physDst = freeList_.back();
            freeList_.pop_back();
            e.prevPhys = renameMap_[f.su.dst];
            renameMap_[f.su.dst] = e.physDst;
            prfReady_[e.physDst] = 0;
        }

        if (is_store) {
            e.storeSeq = sqNextSeq_;
            e.sqSlot = static_cast<std::int32_t>(sqNextSeq_ %
                                                 cfg_.sqEntries);
            SqEntry &q = sq_[e.sqSlot];
            q = SqEntry{};
            q.valid = true;
            q.storeSeq = sqNextSeq_;
            q.robIdx = static_cast<std::uint32_t>(seq % cfg_.robEntries);
            q.seqNum = seq;
            q.rip = f.rip;
            q.upc = f.upc;
            ++sqNextSeq_;
        }
        if (is_load) {
            e.isLoad = true;
            e.loadOlderStoreSeq = sqNextSeq_;
            ++lqOccupancy_;
        }

        if (needs_iq)
            iq_.push_back(static_cast<std::uint32_t>(seq %
                                                     cfg_.robEntries));
        else
            e.done = true;

        uopQueue_.pop_front();
    }
}

// ---------------------------------------------------------------- issue

bool
Core::loadBlocked(const RobEntry &e, Addr addr, unsigned size,
                  bool &can_forward, std::uint64_t &fwd_value,
                  std::uint32_t &fwd_slot)
{
    can_forward = false;
    // Scan older stores youngest-first; the closest overlap decides.
    for (std::uint64_t s = e.loadOlderStoreSeq; s-- > sqHeadSeq_;) {
        const std::uint32_t slot =
            static_cast<std::uint32_t>(s % cfg_.sqEntries);
        const SqEntry &q = sq_[slot];
        if (!q.valid)
            continue; // squash hole (only transiently possible)
        if (!q.addrReady)
            return true; // unknown older address: conservative block
        const bool overlap =
            q.addr < addr + size && addr < q.addr + q.size;
        if (!overlap)
            continue;
        if (!q.dataReady)
            return true;
        const bool contained =
            addr >= q.addr && addr + size <= q.addr + q.size;
        if (!contained)
            return true; // partial overlap: wait for drain
        const unsigned shift =
            static_cast<unsigned>(addr - q.addr) * 8;
        // Physical consumption of the SQ data field — recorded even
        // when the caller is only probing issue eligibility (a
        // conservative over-report; see EffectSink).
        emitEffect(Structure::StoreQueue, slot,
                   static_cast<std::uint8_t>(
                       (size >= 8 ? 0xffu : (1u << size) - 1u)
                       << (shift / 8)),
                   false);
        std::uint64_t v = sqData_[slot] >> shift;
        if (size < 8)
            v &= (1ULL << (size * 8)) - 1;
        fwd_value = v;
        fwd_slot = slot;
        can_forward = true;
        return false;
    }
    return false;
}

void
Core::executeUop(RobEntry &e)
{
    const StaticUop &su = e.su;
    switch (su.kind) {
      case UopKind::Alu:
      case UopKind::Mul:
      case UopKind::Div: {
        std::uint64_t a = 0;
        std::uint64_t b;
        if (e.physSrc1 != NO_PREG)
            a = readPhysReg(e, e.physSrc1);
        if (e.physSrc2 != NO_PREG) {
            b = readPhysReg(e, e.physSrc2);
        } else if (su.base == Opcode::MOVHI) {
            b = static_cast<std::uint32_t>(su.imm);
        } else {
            b = static_cast<std::uint64_t>(su.imm);
        }
        isa::AluResult r = isa::aluCompute(su.base, a, b);
        if (r.divByZero)
            e.trap = TrapKind::DivZero;
        e.resultValue = r.value;
        const unsigned lat = su.kind == UopKind::Alu ? cfg_.aluLatency
                             : su.kind == UopKind::Mul ? cfg_.mulLatency
                                                       : cfg_.divLatency;
        scheduleCompletion(e, cycle_ + lat);
        break;
      }

      case UopKind::Branch: {
        const std::uint64_t a = readPhysReg(e, e.physSrc1);
        const std::uint64_t b = readPhysReg(e, e.physSrc2);
        e.actualTaken = isa::branchTaken(su.base, a, b);
        e.actualTarget = e.actualTaken
                             ? static_cast<std::uint32_t>(su.imm)
                             : e.rip + isa::INSN_BYTES;
        scheduleCompletion(e, cycle_ + 1);
        break;
      }

      case UopKind::Jump: {
        e.actualTaken = true;
        if (su.base == Opcode::JMP) {
            e.actualTarget = static_cast<std::uint32_t>(su.imm);
        } else {
            e.actualTarget = readPhysReg(e, e.physSrc1);
        }
        scheduleCompletion(e, cycle_ + 1);
        break;
      }

      case UopKind::Load: {
        ++stats_.loadsExecuted;
        const Addr addr = prf_[e.physSrc1] + su.imm;
        addPendingRead(e, Structure::RegisterFile, e.physSrc1, cycle_,
                       phase::RegRead);
        emitEffect(Structure::RegisterFile, e.physSrc1, 0xff, false);
        const TrapKind t = mem_.check(addr, su.memSize, false);
        if (t != TrapKind::None) {
            e.trap = t;
            scheduleCompletion(e, cycle_ + 1);
            break;
        }
        bool can_forward = false;
        std::uint64_t value = 0;
        std::uint32_t fwd_slot = 0;
        const bool blocked =
            loadBlocked(e, addr, su.memSize, can_forward, value, fwd_slot);
        MERLIN_ASSERT(!blocked, "blocked load reached execute");
        Cycle done_at;
        if (can_forward) {
            ++stats_.storeForwards;
            addPendingRead(e, Structure::StoreQueue, fwd_slot, cycle_,
                           phase::SqForwardRead);
            done_at = cycle_ + cfg_.forwardLatency;
        } else {
            l1dWbReadPhase_ = phase::L1dIssueWbRead;
            l1dWritePhase_ = phase::L1dIssueWrite;
            l1dCtxSeq_ = e.seq;
            Cache::AccessResult ar =
                l1d_.access(addr, false, cycle_, e.rip, e.upc);
            const std::uint32_t off = static_cast<std::uint32_t>(
                addr & (cfg_.l1d.lineSize - 1));
            value = l1d_.readBytes(ar.set, ar.way, off, su.memSize);
            addPendingRead(e, Structure::L1DCache,
                           l1d_.wordIndex(ar.set, ar.way, off), cycle_,
                           phase::L1dLoadRead);
            if (esink_) {
                // Exact bytes consumed, per touched word (a load may
                // straddle an 8-byte word boundary).
                for (std::uint32_t b = off; b < off + su.memSize;) {
                    const std::uint32_t run = std::min<std::uint32_t>(
                        off + su.memSize, (b & ~7u) + 8);
                    std::uint8_t mask = 0;
                    for (std::uint32_t i = b; i < run; ++i)
                        mask |= static_cast<std::uint8_t>(1u << (i & 7u));
                    emitEffect(Structure::L1DCache,
                               l1d_.wordIndex(ar.set, ar.way, b), mask,
                               false);
                    b = run;
                }
            }
            done_at = cycle_ + ar.latency;
            ar.hit ? ++stats_.l1dHits : ++stats_.l1dMisses;
        }
        if (su.loadSigned) {
            value = static_cast<std::uint64_t>(
                signExtend(value, su.memSize * 8));
        }
        e.resultValue = value;
        scheduleCompletion(e, done_at);
        break;
      }

      case UopKind::Store: {
        const Addr addr = readPhysReg(e, e.physSrc1) + su.imm;
        const std::uint64_t data = readPhysReg(e, e.physSrc2);
        SqEntry &q = sq_[e.sqSlot];
        const TrapKind t = mem_.check(addr, su.memSize, true);
        if (t != TrapKind::None) {
            e.trap = t;
        } else {
            q.addr = addr;
            q.size = su.memSize;
            q.addrReady = true;
            sqData_[e.sqSlot] = data;
            q.dataReady = true;
            emitEffect(Structure::StoreQueue,
                       static_cast<EntryIndex>(e.sqSlot), 0xff, true);
            if (probe_) {
                probe_->onWrite(Structure::StoreQueue,
                                static_cast<EntryIndex>(e.sqSlot), cycle_,
                                phase::SqWrite);
            }
        }
        scheduleCompletion(e, cycle_ + 1);
        break;
      }

      case UopKind::Out: {
        e.outValue = readPhysReg(e, e.physSrc2);
        scheduleCompletion(e, cycle_ + 1);
        break;
      }

      case UopKind::Trap: {
        const std::uint64_t a = readPhysReg(e, e.physSrc1);
        if (a != 0)
            e.trap = TrapKind::DetectedError;
        scheduleCompletion(e, cycle_ + 1);
        break;
      }

      default:
        panic("executeUop: unexpected uop kind");
    }
}

void
Core::stageIssue()
{
    unsigned issued = 0;
    unsigned alu_used = 0;
    unsigned complex_used = 0;
    unsigned mem_used = 0;

    for (auto it = iq_.begin();
         it != iq_.end() && issued < cfg_.issueWidth;) {
        RobEntry &e = rob_[*it];
        const bool ready =
            (e.physSrc1 == NO_PREG || prfReady_[e.physSrc1]) &&
            (e.physSrc2 == NO_PREG || prfReady_[e.physSrc2]);
        if (!ready) {
            ++it;
            continue;
        }

        // Functional-unit availability.
        unsigned div_unit = 0;
        switch (e.su.kind) {
          case UopKind::Alu:
          case UopKind::Branch:
          case UopKind::Jump:
          case UopKind::Out:
          case UopKind::Trap:
            if (alu_used >= cfg_.intAluCount) {
                ++it;
                continue;
            }
            break;
          case UopKind::Mul:
            if (complex_used >= cfg_.complexCount) {
                ++it;
                continue;
            }
            break;
          case UopKind::Div: {
            bool found = false;
            if (complex_used < cfg_.complexCount) {
                for (unsigned u = 0; u < divBusyUntil_.size(); ++u) {
                    if (divBusyUntil_[u] <= cycle_) {
                        div_unit = u;
                        found = true;
                        break;
                    }
                }
            }
            if (!found) {
                ++it;
                continue;
            }
            break;
          }
          case UopKind::Load:
          case UopKind::Store:
            if (mem_used >= cfg_.memPorts) {
                ++it;
                continue;
            }
            break;
          default:
            break;
        }

        // Memory-ordering check for loads (no pending reads recorded on
        // a blocked attempt; the final successful issue records them).
        if (e.su.kind == UopKind::Load) {
            const Addr addr = prf_[e.physSrc1] + e.su.imm;
            // Scheduling read: the register value decides whether the
            // load can issue this cycle, so it is physically consumed
            // even when the load ends up blocked.
            emitEffect(Structure::RegisterFile, e.physSrc1, 0xff, false);
            if (mem_.check(addr, e.su.memSize, false) == TrapKind::None) {
                bool fwd = false;
                std::uint64_t v = 0;
                std::uint32_t slot = 0;
                if (loadBlocked(e, addr, e.su.memSize, fwd, v, slot)) {
                    ++it;
                    continue;
                }
            }
        }

        executeUop(e);
        switch (e.su.kind) {
          case UopKind::Mul:
            ++complex_used;
            break;
          case UopKind::Div:
            ++complex_used;
            divBusyUntil_[div_unit] = cycle_ + cfg_.divLatency;
            break;
          case UopKind::Load:
          case UopKind::Store:
            ++mem_used;
            break;
          default:
            ++alu_used;
            break;
        }
        ++issued;
        it = iq_.erase(it);
    }
}

// ------------------------------------------------------------ writeback

void
Core::squashAfter(SeqNum branch_seq, Addr redirect_to)
{
    ++stats_.squashes;
    for (SeqNum s = robTailSeq_; s-- > branch_seq + 1;) {
        RobEntry &e = robAt(s);
        ++e.gen; // invalidate in-flight completions
        e.nPending = 0;
        if (e.physDst != NO_PREG) {
            renameMap_[e.su.dst] = e.prevPhys;
            freeList_.push_back(e.physDst);
        }
        if (e.sqSlot >= 0) {
            sq_[e.sqSlot].valid = false;
            sqNextSeq_ = e.storeSeq;
        }
        if (e.isLoad)
            --lqOccupancy_;
    }
    robTailSeq_ = branch_seq + 1;

    // Drop squashed entries from the issue queue.
    std::erase_if(iq_, [&](std::uint32_t idx) {
        return rob_[idx].seq > branch_seq;
    });

    // Repair speculative predictor state.
    RobEntry &b = robAt(branch_seq);
    if (b.hasPredState)
        tournament_.repairHistory(b.predState, b.actualTaken);
    if (b.rasValid) {
        ras_.restore(b.rasSnap);
        if (b.su.isCall)
            ras_.push(b.rip + isa::INSN_BYTES);
        else if (b.su.isReturn)
            ras_.pop();
    }

    fetchPc_ = redirect_to;
    fetchResumeCycle_ = cycle_ + cfg_.redirectPenalty;
    fetchHalted_ = false;
    uopQueue_.clear();
}

void
Core::stageWriteback()
{
    while (!completions_.empty() && completions_.top().cycle <= cycle_) {
        const Completion c = completions_.top();
        completions_.pop();
        RobEntry &e = rob_[c.robIdx];
        if (e.gen != c.gen)
            continue; // squashed

        if (e.physDst != NO_PREG) {
            prf_[e.physDst] = e.resultValue;
            prfReady_[e.physDst] = 1;
            emitEffect(Structure::RegisterFile, e.physDst, 0xff, true);
            if (probe_) {
                probe_->onWrite(Structure::RegisterFile, e.physDst,
                                c.cycle, phase::RegWrite);
            }
        }
        e.done = true;

        if (e.isCtrl && e.actualTarget != e.predTarget) {
            ++stats_.branchMispredicts;
            squashAfter(e.seq, e.actualTarget);
        }
    }
}

// --------------------------------------------------------------- commit

void
Core::stageDrainStores()
{
    if (sqHeadSeq_ >= sqNextSeq_)
        return;
    const std::uint32_t slot =
        static_cast<std::uint32_t>(sqHeadSeq_ % cfg_.sqEntries);
    SqEntry &q = sq_[slot];
    MERLIN_ASSERT(q.valid, "invalid store at SQ head");
    if (!q.committed)
        return;

    l1dWbReadPhase_ = phase::L1dDrainWbRead;
    l1dWritePhase_ = phase::L1dDrainWrite;
    l1dCtxSeq_ = q.seqNum;
    Cache::AccessResult ar = l1d_.access(q.addr, true, cycle_, q.rip,
                                         q.upc);
    const std::uint32_t off =
        static_cast<std::uint32_t>(q.addr & (cfg_.l1d.lineSize - 1));
    // Draining physically reads the low q.size bytes of the data field.
    emitEffect(Structure::StoreQueue, slot,
               static_cast<std::uint8_t>(q.size >= 8 ? 0xffu
                                                     : (1u << q.size) - 1u),
               false);
    l1d_.writeBytes(ar.set, ar.way, off, q.size, sqData_[slot], cycle_);
    if (probe_) {
        // Draining reads the SQ data field one last time.
        probe_->onCommittedRead(Structure::StoreQueue, slot, cycle_,
                                phase::SqDrainRead, q.rip, q.upc,
                                q.seqNum);
    }
    q.valid = false;
    ++sqHeadSeq_;
}

void
Core::stageCommit()
{
    for (unsigned n = 0; n < cfg_.commitWidth && !robEmpty(); ++n) {
        RobEntry &e = robAt(robHeadSeq_);
        if (!e.done)
            return;

        if (e.trap != TrapKind::None) {
            raiseTrapAtCommit(e);
            return;
        }
        if (e.su.kind == UopKind::Halt) {
            ++stats_.instret;
            ++stats_.uopsRetired;
            terminate(isa::TerminateReason::Halted,
                      static_cast<int>(e.su.imm));
            return;
        }

        if (probe_) {
            for (unsigned i = 0; i < e.nPending; ++i) {
                const PendingRead &p = e.pending[i];
                probe_->onCommittedRead(p.s, p.entry, p.cycle, p.phase,
                                        e.rip, e.upc, e.seq);
            }
        }

        if (e.su.kind == UopKind::Out) {
            std::uint8_t buf[8];
            storeLE(buf, e.outValue, 8);
            result_.output.insert(result_.output.end(), buf,
                                  buf + e.su.memSize);
        }
        if (e.su.kind == UopKind::Store)
            sq_[e.sqSlot].committed = true;
        if (e.isLoad)
            --lqOccupancy_;

        if (e.physDst != NO_PREG) {
            if (e.prevPhys != NO_PREG)
                freeList_.push_back(e.prevPhys);
            commitMap_[e.su.dst] = e.physDst;
        }

        if (e.isCtrl) {
            if (e.hasPredState) {
                ++stats_.condBranches;
                tournament_.update(e.rip, e.actualTaken, e.predState);
                if (probe_)
                    probe_->onCommitBranch(e.rip, e.actualTaken, e.seq);
            } else if (e.su.base == Opcode::JR) {
                btb_.update(e.rip, e.actualTarget);
            }
        }

        ++stats_.uopsRetired;
        if (e.lastUop) {
            ++stats_.instret;
            if (probe_)
                probe_->onCommitInstruction(e.rip, e.seq);
            if (cfg_.instructionWindowEnd != 0 &&
                stats_.instret >= cfg_.instructionWindowEnd) {
                ++robHeadSeq_;
                lastCommitCycle_ = cycle_;
                terminate(isa::TerminateReason::WindowEnd, 0);
                return;
            }
        }

        ++robHeadSeq_;
        lastCommitCycle_ = cycle_;
    }
}

// ----------------------------------------------------------------- tick

bool
Core::tick()
{
    if (finished_)
        return false;
    if (cycle_ >= cfg_.maxCycles) {
        terminate(isa::TerminateReason::CycleLimit, -1);
        return false;
    }
    if (cycle_ - lastCommitCycle_ > cfg_.deadlockCycles) {
        terminate(isa::TerminateReason::Deadlock, -1);
        return false;
    }

    stageCommit();
    if (finished_) {
        stats_.cycles = cycle_;
        return false;
    }
    stageDrainStores();
    stageWriteback();
    stageIssue();
    stageRename();
    stageFetch();

    ++cycle_;
    stats_.cycles = cycle_;
    return true;
}

isa::ArchResult
Core::run()
{
    while (tick()) {
    }
    return result_;
}

std::string
CoreConfig::summary() const
{
    std::string s = "OoO x" + std::to_string(issueWidth);
    s += " RF=" + std::to_string(numPhysIntRegs);
    s += " SQ=" + std::to_string(sqEntries);
    s += " LQ=" + std::to_string(lqEntries);
    s += " ROB=" + std::to_string(robEntries);
    s += " IQ=" + std::to_string(iqEntries);
    s += " L1D=" + std::to_string(l1d.sizeBytes / 1024) + "KB";
    s += " L1I=" + std::to_string(l1i.sizeBytes / 1024) + "KB";
    s += " L2=" + std::to_string(l2.sizeBytes / 1024) + "KB";
    return s;
}

} // namespace merlin::uarch
