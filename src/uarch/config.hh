/**
 * @file
 * Microarchitecture configuration (the paper's Table 1).
 *
 * Defaults model the evaluated out-of-order x86-class machine: 256-entry
 * physical integer register file, 32-entry issue queue, 100-entry ROB,
 * 64+64 load/store queue, 6 simple + 2 complex integer units, 2 memory
 * ports, 32KB L1I, 64KB L1D, 1MB L2, tournament predictor with a 4K-entry
 * direct-mapped BTB.
 */

#ifndef MERLIN_UARCH_CONFIG_HH
#define MERLIN_UARCH_CONFIG_HH

#include <cstdint>
#include <string>

namespace merlin::uarch
{

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t ways = 4;
    std::uint32_t lineSize = 64;
    std::uint32_t hitLatency = 3;

    std::uint32_t
    numSets() const
    {
        return sizeBytes / (ways * lineSize);
    }
    std::uint32_t
    wordsPerLine() const
    {
        return lineSize / 8;
    }
    /** Number of 8-byte words in the data array (MeRLiN entries). */
    std::uint32_t
    totalWords() const
    {
        return sizeBytes / 8;
    }
};

/** Full core configuration. */
struct CoreConfig
{
    // Storage structures (the paper's fault-injection targets).
    unsigned numPhysIntRegs = 256;
    unsigned sqEntries = 64;
    unsigned lqEntries = 64;

    // Window.
    unsigned robEntries = 100;
    unsigned iqEntries = 32;

    // Widths.
    unsigned fetchWidth = 4;
    unsigned renameWidth = 4;
    unsigned issueWidth = 8;
    unsigned commitWidth = 4;

    // Functional units.
    unsigned intAluCount = 6;
    unsigned complexCount = 2; ///< mul/div units
    unsigned memPorts = 2;

    // Latencies (cycles).
    unsigned aluLatency = 1;
    unsigned mulLatency = 3;
    unsigned divLatency = 20;
    unsigned forwardLatency = 2;  ///< store-to-load forward
    unsigned frontendDepth = 3;   ///< fetch-to-rename delay
    unsigned redirectPenalty = 2; ///< squash-to-refetch delay
    unsigned memLatency = 80;     ///< DRAM access beyond L2

    CacheConfig l1i{32 * 1024, 4, 64, 1};
    CacheConfig l1d{64 * 1024, 4, 64, 3};
    CacheConfig l2{1024 * 1024, 16, 64, 12};

    // Branch prediction.
    unsigned localPredictorEntries = 2048;
    unsigned globalPredictorEntries = 4096;
    unsigned chooserEntries = 4096;
    unsigned btbEntries = 4096;
    unsigned rasEntries = 16;

    /**
     * Copy-on-write chunk granularity (bytes) of the backing memory
     * and cache data arrays: a power of two >= 64.  Smaller chunks
     * detach less per write but cost more pointer table; the value
     * never changes simulation results, only snapshot cost.
     */
    std::uint32_t memChunkBytes = 4096;

    // Watchdogs.
    std::uint64_t maxCycles = 2'000'000'000ULL;
    std::uint64_t deadlockCycles = 20'000;

    /** Stop committing after this many macro instructions (0 = off). */
    std::uint64_t instructionWindowEnd = 0;

    // Fluent size variants used throughout the evaluation.
    CoreConfig
    withRegisterFile(unsigned regs) const
    {
        CoreConfig c = *this;
        c.numPhysIntRegs = regs;
        return c;
    }
    CoreConfig
    withStoreQueue(unsigned entries) const
    {
        CoreConfig c = *this;
        c.sqEntries = entries;
        c.lqEntries = entries;
        return c;
    }
    CoreConfig
    withL1dKb(unsigned kb) const
    {
        CoreConfig c = *this;
        c.l1d.sizeBytes = kb * 1024;
        return c;
    }

    /** One-line summary for bench headers. */
    std::string summary() const;
};

} // namespace merlin::uarch

#endif // MERLIN_UARCH_CONFIG_HH
