/**
 * @file
 * An early design-space study, the use case the paper motivates:
 * "which structure deserves ECC?"  Runs scaled MeRLiN campaigns over
 * RF / SQ / L1D size variants on two workloads and ranks the structures
 * by FIT contribution, with per-class breakdowns a designer would use
 * to pick a protection mechanism (parity catches SDC reads, ECC also
 * corrects, watchdogs address timeouts...).
 *
 * Build & run:  ./build/examples/protection_study
 */

#include <cstdio>
#include <vector>

#include "merlin/campaign.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace merlin;

    const std::vector<std::string> names = {"sha", "fft"};
    struct Candidate
    {
        uarch::Structure s;
        unsigned variant;
    };
    const Candidate candidates[] = {
        {uarch::Structure::RegisterFile, 256},
        {uarch::Structure::RegisterFile, 64},
        {uarch::Structure::StoreQueue, 64},
        {uarch::Structure::StoreQueue, 16},
        {uarch::Structure::L1DCache, 64},
        {uarch::Structure::L1DCache, 16},
    };

    std::printf("%-6s %-10s %10s %8s %8s %8s %10s\n", "struct", "size",
                "AVF", "SDC%", "DUE%", "Crash%", "FIT");
    for (const auto &cand : candidates) {
        core::ClassCounts agg;
        std::uint64_t bits = 0;
        for (const auto &name : names) {
            auto w = workloads::buildWorkload(name);
            core::CampaignConfig cfg;
            cfg.target = cand.s;
            switch (cand.s) {
              case uarch::Structure::RegisterFile:
                cfg.core = cfg.core.withRegisterFile(cand.variant);
                bits = cand.variant * 64ULL;
                break;
              case uarch::Structure::StoreQueue:
                cfg.core = cfg.core.withStoreQueue(cand.variant);
                bits = cand.variant * 64ULL;
                break;
              case uarch::Structure::L1DCache:
                cfg.core = cfg.core.withL1dKb(cand.variant);
                bits = cand.variant * 1024ULL * 8;
                break;
            }
            cfg.sampling = core::specFixed(1200);
            cfg.seed = 7;
            core::Campaign camp(w.program, cfg);
            agg = agg + camp.run().merlinEstimate;
        }
        const double avf = agg.avf();
        std::printf("%-6s %-10u %9.2f%% %7.2f%% %7.2f%% %7.2f%% %10.3f\n",
                    uarch::structureName(cand.s), cand.variant,
                    100 * avf,
                    100 * agg.fraction(faultsim::Outcome::SDC),
                    100 * agg.fraction(faultsim::Outcome::DUE),
                    100 * agg.fraction(faultsim::Outcome::Crash),
                    core::fitRate(avf, bits));
    }

    std::printf("\nReading the table like the paper's Section 1: the "
                "L1D dominates FIT through\nsheer bit count even at "
                "modest AVF — protect it first; the register file's\n"
                "AVF rises as it shrinks (fewer dead entries); the SQ "
                "is small enough that\nparity on forwarding paths "
                "usually suffices.\n");
    return 0;
}
