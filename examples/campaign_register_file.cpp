/**
 * @file
 * A complete MeRLiN campaign on the physical register file for the
 * qsort workload: preprocessing (ACE-like profiling + statistical fault
 * list), two-step fault-list reduction, injection of representatives,
 * and the extrapolated reliability report — Figure 2 of the paper as
 * code.
 *
 * Build & run:  ./build/examples/campaign_register_file
 */

#include <cstdio>

#include "merlin/campaign.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace merlin;

    auto w = workloads::buildWorkload("qsort");
    std::printf("workload: qsort — %s\n", w.description.c_str());

    core::CampaignConfig cfg;
    cfg.target = uarch::Structure::RegisterFile;
    cfg.core = uarch::CoreConfig{}.withRegisterFile(128);
    // A statistically meaningful scaled campaign: ~2000 faults is the
    // paper's 99% confidence / 2.88% error margin point.
    cfg.sampling = core::SamplingSpec{0.99, 0.0288, std::nullopt};
    cfg.seed = 42;

    core::Campaign campaign(w.program, cfg);
    core::CampaignResult r = campaign.run();

    std::printf("\n-- preprocessing --\n");
    std::printf("golden run: %llu instructions, %llu cycles\n",
                static_cast<unsigned long long>(r.goldenInstret),
                static_cast<unsigned long long>(r.goldenCycles));
    std::printf("ACE-like AVF (upper bound): %.2f%%\n", 100 * r.aceAvf);
    std::printf("initial fault list: %llu faults\n",
                static_cast<unsigned long long>(r.initialFaults));

    std::printf("\n-- fault list reduction --\n");
    std::printf("pruned by ACE-like analysis: %llu (masked, no run)\n",
                static_cast<unsigned long long>(r.aceMasked));
    std::printf("survivors in vulnerable intervals: %llu\n",
                static_cast<unsigned long long>(r.survivors));
    std::printf("groups after (RIP,uPC) + byte split: %llu\n",
                static_cast<unsigned long long>(r.numGroups));
    std::printf("speedup: ACE-like %.1fX, with grouping %.1fX\n",
                r.speedupAce, r.speedupTotal);

    std::printf("\n-- injection campaign (%llu representative runs) --\n",
                static_cast<unsigned long long>(r.injections));
    for (unsigned c = 0; c < faultsim::NUM_OUTCOMES; ++c) {
        auto o = static_cast<faultsim::Outcome>(c);
        if (r.merlinEstimate.of(o) == 0)
            continue;
        std::printf("%-8s %6.2f%%\n", faultsim::outcomeName(o),
                    100.0 * r.merlinEstimate.fraction(o));
    }
    const std::uint64_t bits = cfg.core.numPhysIntRegs * 64ULL;
    std::printf("\nAVF = %.2f%%  ->  FIT = %.3f (0.01 FIT/bit, %llu "
                "bits)\n",
                100.0 * r.merlinEstimate.avf(), r.merlinFit(bits),
                static_cast<unsigned long long>(bits));
    std::printf("campaign wall clock: %.2fs profiling + %.2fs "
                "injections\n",
                r.profileSeconds, r.injectionSeconds);
    return 0;
}
