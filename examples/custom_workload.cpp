/**
 * @file
 * Bringing your own workload: write MRL-64 assembly (here: a CRC-32
 * kernel), validate it on the reference interpreter, then measure its
 * store-queue vulnerability with a MeRLiN campaign — the full user
 * journey for custom code.
 *
 * Build & run:  ./build/examples/custom_workload
 */

#include <cstdio>

#include "isa/interp.hh"
#include "masm/asm.hh"
#include "merlin/campaign.hh"

namespace
{

/** CRC-32 (reflected 0xEDB88320) over a small buffer, in MRL-64. */
const char *CRC_SRC = R"(
.data
buf: .space 256
.text
_start:
    ; fill the buffer with a deterministic pattern
    la   s0, buf
    movi s1, 0
    movi s2, 256
fill:
    mul  t0, s1, s1
    addi t0, t0, 17
    add  t1, s0, s1
    st.b t0, [t1]
    addi s1, s1, 1
    blt  s1, s2, fill

    ; crc = 0xffffffff
    li   s3, 0xffffffff
    movi s1, 0
crc_byte:
    add  t0, s0, s1
    ld.bu t1, [t0]
    xor  s3, s3, t1
    movi t2, 8
crc_bit:
    andi t3, s3, 1
    shri s3, s3, 1
    beq  t3, t8, no_poly
    li   t4, 0xedb88320
    xor  s3, s3, t4
no_poly:
    addi t2, t2, -1
    bne  t2, t8, crc_bit
    addi s1, s1, 1
    blt  s1, s2, crc_byte
    li   t0, 0xffffffff
    xor  s3, s3, t0
    out.d s3
    halt 0
)";

std::uint32_t
referenceCrc()
{
    std::uint8_t buf[256];
    for (unsigned i = 0; i < 256; ++i)
        buf[i] = static_cast<std::uint8_t>(i * i + 17);
    std::uint32_t crc = 0xffffffffu;
    for (unsigned i = 0; i < 256; ++i) {
        crc ^= buf[i];
        for (int b = 0; b < 8; ++b) {
            const std::uint32_t lsb = crc & 1;
            crc >>= 1;
            if (lsb)
                crc ^= 0xedb88320u;
        }
    }
    return ~crc;
}

} // namespace

int
main()
{
    using namespace merlin;

    // 1. Assemble and validate against a host-side reference.
    isa::Program prog = masm::assemble(CRC_SRC, "crc32");
    isa::ArchResult ref = isa::interpret(prog);
    std::uint32_t got = 0;
    for (int i = 3; i >= 0; --i)
        got = (got << 8) | ref.output[i];
    std::printf("crc32: asm=0x%08x reference=0x%08x %s\n", got,
                referenceCrc(),
                got == referenceCrc() ? "(match)" : "(MISMATCH)");

    // 2. MeRLiN campaign on the store queue data field.
    core::CampaignConfig cfg;
    cfg.target = uarch::Structure::StoreQueue;
    cfg.core = uarch::CoreConfig{}.withStoreQueue(16);
    cfg.sampling = core::specFixed(20'000);
    core::Campaign camp(prog, cfg);
    auto r = camp.run();

    std::printf("\nSQ campaign: %llu faults -> %llu survivors -> %llu "
                "injected (%.0fX speedup)\n",
                static_cast<unsigned long long>(r.initialFaults),
                static_cast<unsigned long long>(r.survivors),
                static_cast<unsigned long long>(r.injections),
                r.speedupTotal);
    std::printf("AVF %.2f%%, classes:", 100 * r.merlinEstimate.avf());
    for (unsigned c = 0; c < faultsim::NUM_OUTCOMES; ++c) {
        auto o = static_cast<faultsim::Outcome>(c);
        if (r.merlinEstimate.of(o))
            std::printf(" %s %.2f%%", faultsim::outcomeName(o),
                        100 * r.merlinEstimate.fraction(o));
    }
    std::printf("\n");
    return 0;
}
