/**
 * @file
 * Quickstart: assemble a tiny program, run it on the out-of-order core,
 * inject one fault, and classify the outcome — the smallest end-to-end
 * tour of the library.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "faultsim/runner.hh"
#include "masm/asm.hh"
#include "uarch/core.hh"

int
main()
{
    using namespace merlin;

    // 1. Assemble a program: sum the first 100 integers and print.
    const char *src = R"(
        movi s0, 0          ; accumulator
        movi s1, 1          ; i
        movi s2, 101
    loop:
        add  s0, s0, s1
        addi s1, s1, 1
        blt  s1, s2, loop
        out.d s0
        halt 0
    )";
    isa::Program prog = masm::assemble(src, "quickstart");

    // 2. Run it on the cycle-level out-of-order core.
    uarch::CoreConfig cfg; // Table-1 defaults: 256 regs, 64 SQ, 64KB L1D
    uarch::Core core(prog, cfg);
    isa::ArchResult r = core.run();
    std::uint64_t sum = 0;
    for (int i = 7; i >= 0; --i)
        sum = (sum << 8) | r.output[i];
    std::printf("golden run: sum=%llu in %llu cycles (IPC %.2f)\n",
                static_cast<unsigned long long>(sum),
                static_cast<unsigned long long>(core.stats().cycles),
                core.stats().ipc());

    // 3. Inject a transient fault: flip bit 5 of physical register 40
    //    at one third of the execution, and classify the outcome.
    faultsim::InjectionRunner runner(prog, cfg);
    faultsim::GoldenRun golden = runner.golden();

    faultsim::Fault fault;
    fault.structure = uarch::Structure::RegisterFile;
    fault.entry = 40;
    fault.bit = 5;
    fault.cycle = golden.stats.cycles / 3;

    faultsim::Outcome outcome = runner.inject(fault, golden);
    std::printf("fault (RF entry %u, bit %u, cycle %llu) -> %s\n",
                fault.entry, fault.bit,
                static_cast<unsigned long long>(fault.cycle),
                faultsim::outcomeName(outcome));

    // 4. Sweep the flip across physical registers mid-run: registers
    //    holding live values (the accumulator, the bound) corrupt the
    //    output, dead ones mask — the effect MeRLiN's ACE-like step
    //    prunes without running anything.
    unsigned non_masked = 0;
    const unsigned sweep = 40;
    fault.cycle = golden.stats.cycles / 2;
    for (unsigned reg = 34; reg < 34 + sweep; ++reg) {
        fault.entry = reg;
        if (runner.inject(fault, golden) != faultsim::Outcome::Masked)
            ++non_masked;
    }
    std::printf("sweep: %u/%u physical registers were live "
                "(non-masked outcome)\n",
                non_masked, sweep);
    return 0;
}
