#!/usr/bin/env bash
# Scatter/gather driver for distributed MeRLiN suites.
#
# Partitions one suite manifest across n workers with the CLI's
# deterministic `--select i/n` filter, runs every worker (local
# processes by default, or one per SSH host with --hosts), gathers the
# per-campaign shard directories, and folds them with `merlin_cli
# store merge` into a single store that is byte-identical to a
# single-host run of the same manifest — in any gather order.
#
# Usage:
#   tools/dispatch.sh --manifest suite.json --workers 3 \
#       [--cli ./build/merlin_cli] [--work-dir dispatch-work] \
#       [--jobs N] [--out merged.json] [--hash] [--resume] \
#       [--hosts "user@h1 user@h2 ..."] [--reference ref.json]
#
#   --manifest   suite manifest every worker runs its share of
#   --workers    number of shares (--select 0/n .. n-1/n)
#   --cli        merlin_cli binary (local path; with --hosts it must
#                exist at this same path on every host)
#   --work-dir   scratch directory for worker stores/shards/logs
#   --jobs       per-worker thread count (default 1)
#   --out        merged store path (default <work-dir>/merged.json)
#   --hash       partition by spec content hash (--select-hash) so
#                shares survive manifest reordering
#   --resume     pass --resume to workers (their per-worker stores in
#                <work-dir> serve completed campaigns from cache)
#   --hosts      run workers over ssh, round-robin across the listed
#                hosts, instead of as local processes; shards are
#                gathered back with scp
#   --reference  after merging, byte-compare the merged store against
#                this single-host store and fail on any difference
set -euo pipefail

manifest="" workers="" cli="./build/merlin_cli" work_dir="dispatch-work"
jobs=1 out="" hash=0 resume=0 hosts="" reference=""

die() { echo "dispatch.sh: $*" >&2; exit 1; }

while [ $# -gt 0 ]; do
    case "$1" in
        --manifest)  manifest="${2:?}"; shift 2 ;;
        --workers)   workers="${2:?}"; shift 2 ;;
        --cli)       cli="${2:?}"; shift 2 ;;
        --work-dir)  work_dir="${2:?}"; shift 2 ;;
        --jobs)      jobs="${2:?}"; shift 2 ;;
        --out)       out="${2:?}"; shift 2 ;;
        --hash)      hash=1; shift ;;
        --resume)    resume=1; shift ;;
        --hosts)     hosts="${2:?}"; shift 2 ;;
        --reference) reference="${2:?}"; shift 2 ;;
        -h|--help)   awk 'NR==1{next} /^#/{sub(/^# ?/,""); print; next} {exit}' "$0"; exit 0 ;;
        *) die "unknown argument '$1' (see --help)" ;;
    esac
done

[ -n "$manifest" ] || die "--manifest is required"
[ -f "$manifest" ] || die "manifest '$manifest' not found"
[ -n "$workers" ] || die "--workers is required"
case "$workers" in (*[!0-9]*|'') die "--workers '$workers' is not a positive integer" ;; esac
[ "$workers" -ge 1 ] || die "--workers must be >= 1"
[ -x "$cli" ] || die "merlin_cli '$cli' is not executable"

select_flag="--select"
[ "$hash" = 1 ] && select_flag="--select-hash"

mkdir -p "$work_dir"

# ------------------------------------------------------------ scatter
# One suite invocation per worker share.  Each worker gets a private
# store (resume state) and a private shard directory (the merge
# inputs), so nothing below shares a file.
read -r -a host_list <<< "$hosts"
pids=() ids=()
for i in $(seq 0 $((workers - 1))); do
    shard_dir="$work_dir/shards-$i"
    store="$work_dir/worker-$i.json"
    log="$work_dir/worker-$i.log"
    resume_args=()
    [ "$resume" = 1 ] && resume_args=(--resume)
    if [ ${#host_list[@]} -eq 0 ]; then
        "$cli" suite "$manifest" "$select_flag" "$i/$workers" \
            --jobs "$jobs" --out "$store" --out-dir "$shard_dir" \
            --no-timing "${resume_args[@]}" > "$log" 2>&1 &
    else
        # Round-robin shares across the given hosts.  The remote side
        # needs the same merlin_cli path; the manifest is shipped to a
        # per-worker scratch directory and the shards scp'd back.
        host="${host_list[$((i % ${#host_list[@]}))]}"
        remote_dir=".merlin-dispatch/$(basename "$work_dir")/worker-$i"
        {
            ssh "$host" "mkdir -p '$remote_dir'" &&
            scp -q "$manifest" "$host:$remote_dir/manifest.json" &&
            ssh "$host" "'$cli' suite '$remote_dir/manifest.json' \
                $select_flag $i/$workers --jobs $jobs \
                --out '$remote_dir/worker.json' \
                --out-dir '$remote_dir/shards' --no-timing \
                ${resume_args[*]:-}" &&
            mkdir -p "$shard_dir" &&
            # A hash share can be legitimately empty: only scp shards
            # that exist, or the glob's failure would mark the worker
            # dead after a perfectly good run.
            { ! ssh "$host" \
                  "ls '$remote_dir'/shards/*.json > /dev/null 2>&1" ||
              scp -q "$host:$remote_dir/shards/*.json" "$shard_dir/"; } &&
            scp -q "$host:$remote_dir/worker.json" "$store"
        } > "$log" 2>&1 &
    fi
    pids+=($!) ids+=("$i")
done

fail=0
for k in "${!pids[@]}"; do
    if ! wait "${pids[$k]}"; then
        echo "dispatch.sh: worker ${ids[$k]}/$workers failed:" >&2
        sed 's/^/    /' "$work_dir/worker-${ids[$k]}.log" >&2 || true
        fail=1
    fi
done
[ "$fail" = 0 ] || exit 1

# ------------------------------------------------------------- gather
# Fold every worker's shard directory into one store.  Merge is
# order-independent (identical keys must carry identical payloads),
# so any gather order reproduces the same bytes.  Every worker above
# exited 0, so a shard-less directory here is a legitimately empty
# share (possible under --hash), not a lost worker — skip it rather
# than tripping `store merge`'s missing-shards check.
[ -n "$out" ] || out="$work_dir/merged.json"
shard_dirs=()
for i in $(seq 0 $((workers - 1))); do
    dir="$work_dir/shards-$i"
    if compgen -G "$dir/*.json" > /dev/null; then
        shard_dirs+=("$dir")
    else
        echo "dispatch.sh: worker $i had an empty share" >&2
    fi
done
[ ${#shard_dirs[@]} -gt 0 ] || die "no worker produced any shards"
"$cli" store merge --out "$out" "${shard_dirs[@]}"

if [ -n "$reference" ]; then
    cmp "$reference" "$out" ||
        die "merged store '$out' differs from reference '$reference'"
    echo "dispatch.sh: merged store byte-matches $reference"
fi
echo "dispatch.sh: $workers workers -> $out"
