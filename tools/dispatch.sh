#!/usr/bin/env bash
# Scatter/gather driver for distributed MeRLiN suites.
#
# Partitions one suite manifest across n workers with the CLI's
# deterministic `--select i/n` filter, runs every worker (local
# processes by default, or one per SSH host with --hosts), gathers the
# per-campaign shard directories, and folds them with `merlin_cli
# store merge` into a single store that is byte-identical to a
# single-host run of the same manifest — in any gather order.
#
# Fault tolerance: every --hosts entry is preflighted with a
# short-timeout ssh no-op (unreachable hosts are dropped from the
# rotation); each worker publishes live counters to a progress.json
# (via the CLI's --progress-json) that drives the heartbeat and stall
# detection; and failed shares are retried up to --retries times with
# exponential backoff, re-dispatched onto the surviving hosts and
# resumed from the dead worker's store and outcome journals — so a
# killed worker costs only its uncommitted injections, and the merged
# store still byte-matches the single-host run.
#
# Usage:
#   tools/dispatch.sh --manifest suite.json --workers 3 \
#       [--cli ./build/merlin_cli] [--work-dir dispatch-work] \
#       [--jobs N] [--out merged.json] [--hash] [--resume] \
#       [--retries N] [--retry-backoff S] [--stall-timeout S] \
#       [--hosts "user@h1 user@h2 ..."] [--reference ref.json]
#   tools/dispatch.sh --check-progress FILE [--stall-timeout S]
#
#   --manifest      suite manifest every worker runs its share of
#   --workers       number of shares (--select 0/n .. n-1/n)
#   --cli           merlin_cli binary (local path; with --hosts it must
#                   exist at this same path on every host)
#   --work-dir      scratch directory for worker stores/shards/logs
#   --jobs          per-worker thread count (default 1)
#   --out           merged store path (default <work-dir>/merged.json)
#   --hash          partition by spec content hash (--select-hash) so
#                   shares survive manifest reordering
#   --resume        pass --resume to workers on the FIRST attempt too
#                   (retries always resume from the per-worker store
#                   and journals in <work-dir>)
#   --retries       re-dispatch a failed share up to N times (default 0)
#   --retry-backoff base seconds between retry rounds, doubling each
#                   round (default 5)
#   --stall-timeout kill a local worker whose share shows no progress
#                   (progress.json injections, or the shard count when
#                   the file is absent) for S seconds, turning a hang
#                   into a retryable failure (default 0 = off; local
#                   mode only — remote progress is not visible until
#                   scp)
#   --hosts         run workers over ssh, round-robin across the listed
#                   hosts, instead of as local processes; shards are
#                   gathered back with scp
#   --reference     after merging, byte-compare the merged store
#                   against this single-host store and fail on any
#                   difference
#   --check-progress FILE
#                   standalone mode: judge a worker progress.json
#                   (written by `merlin_cli suite --progress-json`)
#                   against this host's clock and exit 0 when it is
#                   fresh or finished, 3 when its epoch is older than
#                   --stall-timeout seconds (default 60) — the stall
#                   test external monitors and CI reuse
set -euo pipefail

manifest="" workers="" cli="./build/merlin_cli" work_dir="dispatch-work"
jobs=1 out="" hash=0 resume=0 hosts="" reference=""
retries=0 retry_backoff=5 stall_timeout=0 check_progress=""

die() { echo "dispatch.sh: $*" >&2; exit 1; }

# progress_field FILE KEY: pull one scalar member out of a pretty-
# printed progress.json without a JSON tool (the writer indents one
# member per line, so a sed match on the quoted key is exact —
# "injections" does not match "injections_per_sec").
progress_field() {
    sed -n 's/^[[:space:]]*"'"$2"'": *"\{0,1\}\([^",}]*\)"\{0,1\}.*$/\1/p' \
        "$1" 2>/dev/null | head -1
}

while [ $# -gt 0 ]; do
    case "$1" in
        --manifest)       manifest="${2:?}"; shift 2 ;;
        --workers)        workers="${2:?}"; shift 2 ;;
        --cli)            cli="${2:?}"; shift 2 ;;
        --work-dir)       work_dir="${2:?}"; shift 2 ;;
        --jobs)           jobs="${2:?}"; shift 2 ;;
        --out)            out="${2:?}"; shift 2 ;;
        --hash)           hash=1; shift ;;
        --resume)         resume=1; shift ;;
        --retries)        retries="${2:?}"; shift 2 ;;
        --retry-backoff)  retry_backoff="${2:?}"; shift 2 ;;
        --stall-timeout)  stall_timeout="${2:?}"; shift 2 ;;
        --hosts)          hosts="${2:?}"; shift 2 ;;
        --reference)      reference="${2:?}"; shift 2 ;;
        --check-progress) check_progress="${2:?}"; shift 2 ;;
        -h|--help)       awk 'NR==1{next} /^#/{sub(/^# ?/,""); print; next} {exit}' "$0"; exit 0 ;;
        *) die "unknown argument '$1' (see --help)" ;;
    esac
done

# --------------------------------------------------- --check-progress
# Staleness is epoch-only: a finished worker ("state": "done") stops
# rewriting the file, and that is fine — its last epoch marks when it
# finished, which a monitor should treat as final, not stale.
if [ -n "$check_progress" ]; then
    [ -f "$check_progress" ] || die "progress file '$check_progress' not found"
    state=$(progress_field "$check_progress" state)
    [ -n "$state" ] || die "'$check_progress' has no \"state\" member — not a merlin progress.json?"
    if [ "$state" = "done" ]; then
        echo "dispatch.sh: $check_progress: worker finished"
        exit 0
    fi
    epoch=$(progress_field "$check_progress" epoch)
    case "$epoch" in (*[!0-9]*|'') die "'$check_progress' has no numeric \"epoch\" member" ;; esac
    limit=$stall_timeout
    [ "$limit" -gt 0 ] || limit=60
    age=$(( $(date +%s) - epoch ))
    # A remote worker's clock may run ahead of the monitor's: a
    # negative age is skew, not time travel — clamp it to "just
    # rewritten" instead of tripping the [ -gt ] comparison oddly.
    [ "$age" -ge 0 ] || age=0
    if [ "$age" -gt "$limit" ]; then
        echo "dispatch.sh: $check_progress: STALE — last rewrite ${age}s ago (limit ${limit}s)" >&2
        exit 3
    fi
    echo "dispatch.sh: $check_progress: fresh (${age}s old, state $state)"
    exit 0
fi

[ -n "$manifest" ] || die "--manifest is required"
[ -f "$manifest" ] || die "manifest '$manifest' not found"
[ -n "$workers" ] || die "--workers is required"
case "$workers" in (*[!0-9]*|'') die "--workers '$workers' is not a positive integer" ;; esac
[ "$workers" -ge 1 ] || die "--workers must be >= 1"
[ -x "$cli" ] || die "merlin_cli '$cli' is not executable"
case "$retries" in (*[!0-9]*|'') die "--retries '$retries' is not a non-negative integer" ;; esac
case "$retry_backoff" in (*[!0-9]*|'') die "--retry-backoff '$retry_backoff' is not a non-negative integer" ;; esac
case "$stall_timeout" in (*[!0-9]*|'') die "--stall-timeout '$stall_timeout' is not a non-negative integer" ;; esac

select_flag="--select"
[ "$hash" = 1 ] && select_flag="--select-hash"

mkdir -p "$work_dir"

# ---------------------------------------------------------- preflight
# A dead host must fail here, in seconds, not as a scatter timeout
# minutes in.  Unreachable hosts are dropped from the rotation (their
# would-be shares land on the survivors); losing every host is fatal.
read -r -a host_list <<< "$hosts"
if [ ${#host_list[@]} -gt 0 ]; then
    alive=()
    for h in "${host_list[@]}"; do
        if ssh -o BatchMode=yes -o ConnectTimeout=5 "$h" true \
               >> "$work_dir/preflight.log" 2>&1; then
            alive+=("$h")
        else
            echo "dispatch.sh: host '$h' failed the ssh preflight — dropping it from the rotation" >&2
        fi
    done
    [ ${#alive[@]} -gt 0 ] || die "no --hosts entry passed the ssh preflight (see $work_dir/preflight.log)"
    host_list=("${alive[@]}")
fi

# ------------------------------------------------------------ scatter
# One suite invocation per worker share.  Each worker gets a private
# store (resume state), a private shard directory (the merge inputs),
# and private progress/heartbeat files, so nothing below shares a
# file.  Workers run with --progress-json so the monitor and the
# gather completeness check can read structured progress instead of
# scraping logs.
#
# launch_worker SHARE ATTEMPT starts the share in the background and
# leaves its pid in $launched_pid (NOT echoed: a command substitution
# would fork a subshell, and the parent cannot `wait` on a subshell's
# children).  Retry attempts rotate the host assignment, so a share
# whose host died lands on a survivor, and always pass --resume: the
# per-worker store serves completed campaigns and the outcome journals
# resume the half-done one.
launch_worker() {
    local i="$1" attempt="$2"
    local shard_dir="$work_dir/shards-$i"
    local store="$work_dir/worker-$i.json"
    local log="$work_dir/worker-$i.log"
    local prog="$work_dir/worker-$i.progress.json"
    local resume_args=()
    { [ "$resume" = 1 ] || [ "$attempt" -gt 0 ]; } && resume_args=(--resume)
    # Drop the previous attempt's progress file so the monitor never
    # reads a dead worker's counters as this attempt's progress.
    rm -f "$prog"
    if [ ${#host_list[@]} -eq 0 ]; then
        "$cli" suite "$manifest" "$select_flag" "$i/$workers" \
            --jobs "$jobs" --out "$store" --out-dir "$shard_dir" \
            --progress-json "$prog" \
            --no-timing "${resume_args[@]}" >> "$log" 2>&1 &
    else
        # Round-robin shares across the surviving hosts, rotated by
        # the attempt number.  The remote side needs the same
        # merlin_cli path; the manifest is shipped to a per-worker
        # scratch directory and the shards scp'd back.
        local host="${host_list[$(((i + attempt) % ${#host_list[@]}))]}"
        local remote_dir
        remote_dir=".merlin-dispatch/$(basename "$work_dir")/worker-$i"
        {
            ssh "$host" "mkdir -p '$remote_dir'" &&
            scp -q "$manifest" "$host:$remote_dir/manifest.json" &&
            ssh "$host" "'$cli' suite '$remote_dir/manifest.json' \
                $select_flag $i/$workers --jobs $jobs \
                --out '$remote_dir/worker.json' \
                --out-dir '$remote_dir/shards' \
                --progress-json '$remote_dir/progress.json' --no-timing \
                ${resume_args[*]:-}" &&
            mkdir -p "$shard_dir" &&
            # A hash share can be legitimately empty: only scp shards
            # that exist, or the glob's failure would mark the worker
            # dead after a perfectly good run.
            { ! ssh "$host" \
                  "ls '$remote_dir'/shards/*.json > /dev/null 2>&1" ||
              scp -q "$host:$remote_dir/shards/*.json" "$shard_dir/"; } &&
            scp -q "$host:$remote_dir/worker.json" "$store" &&
            # The final progress.json feeds the gather summary; losing
            # it only degrades reporting, never the merge.
            { scp -q "$host:$remote_dir/progress.json" "$prog" || true; }
        } >> "$log" 2>&1 &
    fi
    launched_pid=$!
}

# monitor_worker SHARE PID heartbeats "epoch signature" into
# worker-SHARE.heartbeat every 2 s while the share runs.  The change
# signature is the worker's own progress.json (injection and campaign
# counters — fine-grained, moves within a campaign) when the file
# exists, with the shard count as the fallback for workers that
# cannot surface one (remote shares before scp, older CLIs).  With
# --stall-timeout, a local worker whose signature stops changing is
# killed so the retry loop can re-dispatch its share.
monitor_worker() {
    local i="$1" pid="$2"
    local hb="$work_dir/worker-$i.heartbeat"
    local prog="$work_dir/worker-$i.progress.json"
    local last_sig="" last_change
    last_change=$(date +%s)
    while kill -0 "$pid" 2>/dev/null; do
        local now sig
        now=$(date +%s)
        if [ -f "$prog" ]; then
            sig="inj=$(progress_field "$prog" injections) done=$(progress_field "$prog" done)"
        else
            sig="shards=$(find "$work_dir/shards-$i" -name '*.json' 2>/dev/null | wc -l)"
        fi
        echo "$now $sig" > "$hb"
        if [ "$sig" != "$last_sig" ]; then
            last_sig=$sig
            last_change=$now
        elif [ "$stall_timeout" -gt 0 ] && [ ${#host_list[@]} -eq 0 ] &&
             [ $((now - last_change)) -ge "$stall_timeout" ]; then
            echo "dispatch.sh: worker $i stalled for ${stall_timeout}s — killing it for re-dispatch" >&2
            kill -9 "$pid" 2>/dev/null || true
            break
        fi
        sleep 2
    done
}

# Run the shares in $1.. to completion; failed share ids land in
# `failed` (global).  Monitors die with their workers.
run_round() {
    local attempt="$1"; shift
    local pids=() ids=()
    local i
    for i in "$@"; do
        launch_worker "$i" "$attempt"
        monitor_worker "$i" "$launched_pid" &
        pids+=("$launched_pid") ids+=("$i")
    done
    failed=()
    local k
    for k in "${!pids[@]}"; do
        if ! wait "${pids[$k]}"; then
            echo "dispatch.sh: worker ${ids[$k]}/$workers failed (attempt $((attempt + 1))):" >&2
            tail -5 "$work_dir/worker-${ids[$k]}.log" 2>/dev/null | sed 's/^/    /' >&2 || true
            failed+=("${ids[$k]}")
        fi
    done
    wait # reap the monitors
}

mapfile -t shares < <(seq 0 $((workers - 1)))
failed=()
recovered=()
backoff=$retry_backoff
attempt=0
while :; do
    run_round "$attempt" "${shares[@]}"
    if [ "$attempt" -gt 0 ] && [ ${#shares[@]} -gt 0 ]; then
        for i in "${shares[@]}"; do
            case " ${failed[*]:-} " in
                *" $i "*) ;;
                *) recovered+=("$i") ;;
            esac
        done
    fi
    [ ${#failed[@]} -gt 0 ] || break
    if [ "$attempt" -ge "$retries" ]; then
        plural=ies
        [ "$attempt" = 1 ] && plural=y
        die "shares ${failed[*]} still failing after $attempt retr$plural"
    fi
    attempt=$((attempt + 1))
    echo "dispatch.sh: retrying share(s) ${failed[*]} in ${backoff}s (retry $attempt of $retries)" >&2
    sleep "$backoff"
    backoff=$((backoff * 2))
    shares=("${failed[@]}")
done
if [ ${#recovered[@]} -gt 0 ]; then
    echo "dispatch.sh: recovered share(s) ${recovered[*]} by re-dispatch"
fi

# ------------------------------------------------------------- gather
# Every share exited 0, so together they ran the complete, disjoint
# selection 0/n..n-1/n.  Double-check that before trusting the merge:
# the per-worker selected counts must sum to exactly the manifest
# size.  The counts come from each worker's final progress.json
# (structured, "state": "done"); a worker without one — remote scp
# lost it, or an older CLI — falls back to scraping its log for the
# "selection i/n: X of Y manifest campaigns" line.
total="" sum=0
for i in $(seq 0 $((workers - 1))); do
    prog="$work_dir/worker-$i.progress.json"
    sel="" tot=""
    if [ -f "$prog" ] && [ "$(progress_field "$prog" state)" = "done" ]; then
        sel=$(progress_field "$prog" selected)
        tot=$(progress_field "$prog" total)
    fi
    if [ -z "$sel" ] || [ -z "$tot" ]; then
        line=$(grep 'manifest campaigns$' "$work_dir/worker-$i.log" | tail -1 || true)
        [ -n "$line" ] || die "worker $i reported no selection (see $work_dir/worker-$i.log)"
        sel=$(echo "$line" | awk '{print $(NF-4)}')
        tot=$(echo "$line" | awk '{print $(NF-2)}')
    fi
    [ -z "$total" ] || [ "$total" = "$tot" ] || die "workers disagree on the manifest size ($total vs $tot)"
    total=$tot
    sum=$((sum + sel))
done
[ "$sum" = "$total" ] || die "selection incomplete: workers covered $sum of $total manifest campaigns"

# Fold every worker's shard directory into one store.  Merge is
# order-independent (identical keys must carry identical payloads),
# so any gather order reproduces the same bytes.  Every worker above
# exited 0, so a shard-less directory here is a legitimately empty
# share (possible under --hash), not a lost worker — skip it rather
# than tripping `store merge`'s missing-shards check.
[ -n "$out" ] || out="$work_dir/merged.json"
shard_dirs=()
for i in $(seq 0 $((workers - 1))); do
    dir="$work_dir/shards-$i"
    if compgen -G "$dir/*.json" > /dev/null; then
        shard_dirs+=("$dir")
    else
        echo "dispatch.sh: worker $i had an empty share" >&2
    fi
done
[ ${#shard_dirs[@]} -gt 0 ] || die "no worker produced any shards"
"$cli" store merge --out "$out" "${shard_dirs[@]}"

if [ -n "$reference" ]; then
    cmp "$reference" "$out" ||
        die "merged store '$out' differs from reference '$reference'"
    echo "dispatch.sh: merged store byte-matches $reference"
fi

# Per-worker throughput, from each share's final progress.json.  A
# share can report 0 injections legitimately (everything cached or an
# empty hash share); a missing file just skips the line.
for i in $(seq 0 $((workers - 1))); do
    prog="$work_dir/worker-$i.progress.json"
    [ -f "$prog" ] || continue
    inj=$(progress_field "$prog" injections)
    rate=$(progress_field "$prog" injections_per_sec)
    secs=$(progress_field "$prog" elapsed_seconds)
    echo "dispatch.sh: worker $i: ${inj:-?} injections in $(awk -v v="${secs:-0}" 'BEGIN{printf "%.1f", v}')s ($(awk -v v="${rate:-0}" 'BEGIN{printf "%.1f", v}') inj/s)"
done
echo "dispatch.sh: $workers workers -> $out"
